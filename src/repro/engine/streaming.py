"""Bounded-memory streaming simulation.

The in-memory engines (:mod:`repro.engine.vectorized`,
:mod:`repro.engine.batched`) require the whole trace as numpy columns,
so peak memory is O(trace).  This module simulates the same predictors
over an *iterator of chunks* (typically a
:class:`~repro.trace.io.TraceReader` over a chunked ``.rbt`` v2 file)
with peak memory O(chunk), by carrying every piece of predictor state
across chunk boundaries explicitly:

* **history registers** — the global history register and the
  per-address BHT rows are carried as integers/arrays; in-chunk history
  windows are computed exactly as in the vectorized engine and the
  carried bits are OR-ed into each step's window at its genuine depth;
* **counter tables** — pattern-history, bias, and chooser tables are
  carried as arrays, and the segmented scans resume each segment from
  its entry's carried value (the per-segment-initial form of
  :func:`~repro.engine.scan.segmented_saturating_scan`);
* **component state** — tournament and class-routed-hybrid streams
  carry their components' streams recursively.

Every path is **bit-identical** to the corresponding cold-start
in-memory simulation (pinned by ``tests/test_engine_streaming.py`` over
every registered predictor family and chunk lengths down to 1):
:func:`simulate_stream` equals :func:`repro.engine.simulate`, and
:func:`simulate_sweep_stream` equals
:func:`repro.engine.batched.simulate_sweep`.  Predictors outside the
vectorized family (YAGS, bi-mode, filter, DHLF, oracle, …) stream
through the stateful reference predictor, which is trivially
chunk-oblivious.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import ConfigurationError
from ..predictors.agree import AgreePredictor
from ..predictors.bimodal import BimodalPredictor
from ..predictors.hybrid import ClassRoutedHybrid
from ..predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    OraclePredictor,
    ProfileStaticPredictor,
)
from ..predictors.tournament import TournamentPredictor
from ..predictors.twolevel import TwoLevelPredictor
from ..trace.stream import Trace
from .batched import DEFAULT_MAX_CHUNK_ELEMENTS, _spec_of
from .results import SimulationResult
from .scan import (
    counter_step_table,
    segmented_automaton_scan,
    segmented_saturating_scan,
    stable_key_order,
)
from .vectorized import (
    _global_window,
    _pht_indices,
    _slot_groups,
    _windows_in_groups,
)

__all__ = [
    "simulate_stream",
    "simulate_sweep_stream",
    "stream_simulator",
    "supports_stream_vectorized",
]


def _as_columns(chunk) -> tuple[np.ndarray, np.ndarray, str]:
    """(pcs, outcomes, name) of a chunk (a Trace or a (pcs, outcomes) pair)."""
    if isinstance(chunk, Trace):
        return chunk.pcs, chunk.outcomes, chunk.name
    pcs, outcomes = chunk
    return np.asarray(pcs, dtype=np.int64), np.asarray(outcomes, dtype=np.uint8), ""


# -- carried state building blocks -------------------------------------------


def _last_in_group(new_group: np.ndarray) -> np.ndarray:
    """Mask of each group's final element, from its new-group mask."""
    last = np.empty(len(new_group), dtype=bool)
    last[-1] = True
    last[:-1] = new_group[1:]
    return last


class _GlobalHistoryState:
    """A k-bit global history register carried across chunks."""

    __slots__ = ("bits", "mask", "value")

    def __init__(self, bits: int) -> None:
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = 0

    def windows(self, outcomes: np.ndarray) -> np.ndarray:
        """History before each step (carried bits included), advancing
        the register past the chunk."""
        n = len(outcomes)
        hist = _global_window(outcomes, self.bits)
        k = min(self.bits, n)
        if k and self.value:
            # Step i has i in-chunk predecessors; its bits i.. come from
            # the carried register's low bits, shifted into place.
            shifts = np.arange(k)
            hist[:k] |= (self.value & (self.mask >> shifts)) << shifts
        if n:
            self.value = ((int(hist[n - 1]) << 1) | int(outcomes[n - 1])) & self.mask
        return hist


class _SlotHistoryState:
    """Per-address (BHT) history rows carried across chunks."""

    __slots__ = ("entries", "bits", "mask", "table")

    def __init__(self, entries: int, bits: int) -> None:
        self.entries = entries
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.table = np.zeros(entries, dtype=np.int64)

    def windows(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        """Per-step history windows (carried rows included), advancing
        every touched BHT row past the chunk."""
        n = len(pcs)
        slots = pcs & (self.entries - 1)
        order, new_group, group_start_pos = _slot_groups(
            slots, self.entries.bit_length() - 1
        )
        sorted_out = outcomes[order]
        in_chunk = _windows_in_groups(sorted_out, group_start_pos, self.bits)
        depth = np.arange(n) - group_start_pos
        sorted_slots = slots[order]
        carried = self.table[sorted_slots]
        shift = np.minimum(depth, self.bits)
        combined = in_chunk | ((carried & (self.mask >> shift)) << shift)
        last = _last_in_group(new_group)
        self.table[sorted_slots[last]] = (
            (combined[last] << 1) | sorted_out[last]
        ) & self.mask
        hist = np.empty(n, dtype=np.int64)
        hist[order] = combined
        return hist


class _CounterTableState:
    """A table of saturating counters carried across chunks.

    :meth:`states_before` is the streaming analogue of the in-memory
    grouped scan: each segment resumes from its entry's carried value,
    and the table advances past the chunk's final step of each entry.
    """

    __slots__ = ("index_bits", "max_state", "table")

    def __init__(self, index_bits: int, counter_bits: int, initial: int) -> None:
        self.index_bits = index_bits
        self.max_state = (1 << counter_bits) - 1
        self.table = np.full(1 << index_bits, initial, dtype=np.uint8)

    def states_before(self, indices: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Counter value before each step, in original order; updates
        the carried table."""
        n = len(indices)
        order = stable_key_order(indices, self.index_bits)
        sorted_indices = indices[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = sorted_indices[1:] != sorted_indices[:-1]
        sorted_inputs = inputs[order]
        init = self.table[sorted_indices]
        state_sorted = segmented_saturating_scan(
            sorted_inputs, starts, init, self.max_state
        )
        last = _last_in_group(starts)
        final = state_sorted[last].astype(np.int64) + np.where(
            sorted_inputs[last].astype(bool), 1, -1
        )
        self.table[sorted_indices[last]] = np.clip(final, 0, self.max_state).astype(
            np.uint8
        )
        states = np.empty(n, dtype=np.uint8)
        states[order] = state_sorted
        return states


# -- per-family stream simulators ---------------------------------------------


class _TwoLevelStream:
    """Streaming two-level/bimodal simulation with carried L1 + PHT state."""

    def __init__(
        self,
        *,
        history_kind: str,
        history_bits: int,
        pht_index_bits: int,
        index_scheme: str,
        bht_entries: int | None,
        counter_bits: int,
    ) -> None:
        self.history_bits = history_bits
        self.pht_index_bits = pht_index_bits
        self.index_scheme = index_scheme
        self.threshold = 1 << (counter_bits - 1)
        self.pht = _CounterTableState(pht_index_bits, counter_bits, self.threshold)
        self.history: _GlobalHistoryState | _SlotHistoryState | None = None
        if history_bits:
            if history_kind == "global":
                self.history = _GlobalHistoryState(history_bits)
            elif history_kind == "per-address":
                if bht_entries is None:
                    raise ConfigurationError("per-address history requires bht_entries")
                self.history = _SlotHistoryState(bht_entries, history_bits)
            else:  # pragma: no cover - constructor-guarded
                raise ConfigurationError(f"unknown history kind {history_kind!r}")

    def _histories(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        if self.history is None:
            return np.zeros(len(pcs), dtype=np.int64)
        if isinstance(self.history, _GlobalHistoryState):
            return self.history.windows(outcomes)
        return self.history.windows(pcs, outcomes)

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        n = len(pcs)
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        out_i64 = outcomes.astype(np.int64)
        histories = self._histories(pcs, out_i64)
        indices = _pht_indices(
            pcs,
            histories,
            index_scheme=self.index_scheme,
            history_bits=self.history_bits,
            pht_index_bits=self.pht_index_bits,
        )
        state_before = self.pht.states_before(indices, outcomes)
        return (state_before >= self.threshold).astype(np.uint8)


class _AgreeStream:
    """Streaming agree predictor: carried bias latch + GHR + agree PHT."""

    def __init__(self, predictor: AgreePredictor) -> None:
        self.bias_entries = predictor.bias_entries
        self.bias = np.zeros(self.bias_entries, dtype=np.int64)
        self.latched = np.zeros(self.bias_entries, dtype=bool)
        self.history = _GlobalHistoryState(predictor.history.bits)
        self.pht = _CounterTableState(
            predictor.pht.index_bits, predictor.pht.bits, predictor.pht.initial
        )
        self.threshold = 1 << (predictor.pht.bits - 1)

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        n = len(pcs)
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        out_i64 = outcomes.astype(np.int64)

        slots = pcs & (self.bias_entries - 1)
        order, new_group, group_start_pos = _slot_groups(
            slots, self.bias_entries.bit_length() - 1
        )
        sorted_slots = slots[order]
        latched = self.latched[sorted_slots]
        first_original = order[group_start_pos]
        first_out = out_i64[first_original]
        # A latched slot keeps its carried bias for the whole chunk; an
        # unlatched slot latches from its first in-chunk outcome, with
        # the pre-latch default-taken prediction on that first step.
        bias_after_sorted = np.where(latched, self.bias[sorted_slots], first_out)
        bias_predict_sorted = np.where(
            latched, bias_after_sorted, np.where(new_group, 1, bias_after_sorted)
        )
        last = _last_in_group(new_group)
        self.bias[sorted_slots[last]] = bias_after_sorted[last]
        self.latched[sorted_slots[last]] = True

        bias_after = np.empty(n, dtype=np.int64)
        bias_after[order] = bias_after_sorted
        bias_predict = np.empty(n, dtype=np.int64)
        bias_predict[order] = bias_predict_sorted

        agree_inputs = (out_i64 == bias_after).astype(np.uint8)
        histories = self.history.windows(out_i64)
        indices = _pht_indices(
            pcs,
            histories,
            index_scheme="xor",
            history_bits=self.history.bits,
            pht_index_bits=self.pht.index_bits,
        )
        state_before = self.pht.states_before(indices, agree_inputs)
        agree = state_before >= self.threshold
        return np.where(agree, bias_predict, 1 - bias_predict).astype(np.uint8)


class _TournamentStream:
    """Streaming tournament: carried component streams + chooser table."""

    def __init__(self, predictor: TournamentPredictor) -> None:
        self.first = stream_simulator(predictor.first)
        self.second = stream_simulator(predictor.second)
        chooser = predictor.chooser
        self.entries = chooser.entries
        self.index_bits = chooser.index_bits
        self.threshold = 1 << (chooser.bits - 1)
        self.table = np.full(chooser.entries, chooser.initial, dtype=np.uint8)
        self.step_table = np.vstack(
            [
                counter_step_table(chooser.bits),
                np.arange(1 << chooser.bits, dtype=np.uint8)[None],
            ]
        )

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        n = len(pcs)
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        first = self.first.feed(pcs, outcomes)
        second = self.second.feed(pcs, outcomes)
        first_correct = first == outcomes
        second_correct = second == outcomes
        hold = np.uint8(2)
        symbols = np.where(
            first_correct == second_correct, hold, second_correct.astype(np.uint8)
        )

        slots = pcs & (self.entries - 1)
        order = stable_key_order(slots, self.index_bits)
        sorted_slots = slots[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = sorted_slots[1:] != sorted_slots[:-1]
        sorted_symbols = symbols[order]
        init = self.table[sorted_slots]
        state_sorted = segmented_automaton_scan(
            self.step_table, sorted_symbols, starts, init
        )
        last = _last_in_group(starts)
        self.table[sorted_slots[last]] = self.step_table[
            sorted_symbols[last].astype(np.int64), state_sorted[last]
        ]
        chooser_state = np.empty(n, dtype=np.uint8)
        chooser_state[order] = state_sorted
        return np.where(chooser_state >= self.threshold, second, first).astype(np.uint8)


class _HybridStream:
    """Streaming class-routed hybrid: carried per-component sub-streams."""

    def __init__(self, predictor: ClassRoutedHybrid) -> None:
        self.predictor = predictor
        self.components = [stream_simulator(c) for c in predictor.components]
        self._route_cache: dict[int, int] = {}

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        n = len(pcs)
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        unique_pcs, codes = np.unique(pcs, return_inverse=True)
        cache = self._route_cache
        route = np.empty(len(unique_pcs), dtype=np.int64)
        for i, pc in enumerate(unique_pcs.tolist()):
            index = cache.get(pc)
            if index is None:
                index = self.predictor.route_index(pc)
                cache[pc] = index
            route[i] = index
        component_of_step = route[codes]

        predictions = np.zeros(n, dtype=np.uint8)
        for index, component in enumerate(self.components):
            mask = component_of_step == index
            if np.any(mask):
                predictions[mask] = component.feed(pcs[mask], outcomes[mask])
        return predictions


class _StaticStream:
    """Stateless predictors: per-step predictions need no carried state."""

    def __init__(self, predictor) -> None:
        self.predictor = predictor
        self._directions: dict[int, int] = {}

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        n = len(pcs)
        if isinstance(self.predictor, AlwaysTakenPredictor):
            return np.ones(n, dtype=np.uint8)
        if isinstance(self.predictor, AlwaysNotTakenPredictor):
            return np.zeros(n, dtype=np.uint8)
        unique_pcs, codes = np.unique(pcs, return_inverse=True)
        cache = self._directions
        directions = np.empty(len(unique_pcs), dtype=np.uint8)
        for i, pc in enumerate(unique_pcs.tolist()):
            direction = cache.get(pc)
            if direction is None:
                direction = int(self.predictor.predict(pc))
                cache[pc] = direction
            directions[i] = direction
        return directions[codes]


class _ReferenceStream:
    """Any predictor, one record at a time — the streaming ground truth.

    The predictor object *is* the carried state, exactly as in
    :func:`repro.engine.reference.simulate_reference` without the
    per-segment reset.
    """

    def __init__(self, predictor) -> None:
        predictor.reset()
        self.predictor = predictor
        self.is_oracle = isinstance(predictor, OraclePredictor)

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        n = len(pcs)
        predictions = np.empty(n, dtype=np.uint8)
        predictor = self.predictor
        predict = predictor.predict
        update = predictor.update
        for i in range(n):
            pc = int(pcs[i])
            taken = bool(outcomes[i])
            if self.is_oracle:
                predictor.prime(taken)
            predictions[i] = 1 if predict(pc) else 0
            update(pc, taken)
        return predictions


_STATIC_TYPES = (AlwaysTakenPredictor, AlwaysNotTakenPredictor, ProfileStaticPredictor)


def supports_stream_vectorized(predictor) -> bool:
    """True if ``predictor`` streams through the vectorized kernels
    (mirrors :func:`repro.engine.supports_vectorized`)."""
    if isinstance(
        predictor, (TwoLevelPredictor, BimodalPredictor, AgreePredictor) + _STATIC_TYPES
    ):
        return True
    if isinstance(predictor, TournamentPredictor):
        return supports_stream_vectorized(predictor.first) and supports_stream_vectorized(
            predictor.second
        )
    if isinstance(predictor, ClassRoutedHybrid):
        return all(supports_stream_vectorized(c) for c in predictor.components)
    return False


def stream_simulator(predictor, *, engine: str = "auto", backend: str | None = None):
    """A chunk-at-a-time simulator for ``predictor``.

    The returned object's ``feed(pcs, outcomes)`` yields the per-step
    predictions for one chunk, carrying all predictor state to the
    next call.  ``engine`` mirrors :func:`repro.engine.simulate`:
    ``"auto"`` picks the vectorized kernels when supported, a compiled
    per-record kernel (:mod:`repro.engine.backend`) when the family has
    one, and the stateful reference predictor otherwise.  ``backend``
    selects the compiled-kernel implementation (default:
    ``REPRO_ENGINE_BACKEND``, else auto-detect).
    """
    if engine == "reference":
        return _ReferenceStream(predictor)
    if engine not in ("auto", "vectorized", "batched"):
        raise ConfigurationError(f"unknown engine {engine!r}")
    if not supports_stream_vectorized(predictor):
        if engine in ("vectorized", "batched"):
            raise ConfigurationError(
                f"streaming {engine} engine cannot simulate "
                f"{type(predictor).__name__}; use engine='reference' or 'auto'"
            )
        from .backend import compiled_stream  # lazy: backend imports predictors

        compiled = compiled_stream(predictor, backend)
        if compiled is not None:
            return compiled
        return _ReferenceStream(predictor)
    if isinstance(predictor, BimodalPredictor):
        return _TwoLevelStream(
            history_kind="global",
            history_bits=0,
            pht_index_bits=predictor.table.index_bits,
            index_scheme="concat",
            bht_entries=None,
            counter_bits=predictor.table.bits,
        )
    if isinstance(predictor, TwoLevelPredictor):
        spec = _spec_of(predictor)
        return _TwoLevelStream(
            history_kind=spec.history_kind,
            history_bits=spec.history_bits,
            pht_index_bits=spec.pht_index_bits,
            index_scheme=spec.index_scheme,
            bht_entries=spec.bht_entries,
            counter_bits=spec.counter_bits,
        )
    if isinstance(predictor, AgreePredictor):
        return _AgreeStream(predictor)
    if isinstance(predictor, TournamentPredictor):
        return _TournamentStream(predictor)
    if isinstance(predictor, ClassRoutedHybrid):
        return _HybridStream(predictor)
    assert isinstance(predictor, _STATIC_TYPES)
    return _StaticStream(predictor)


# -- per-PC accumulation ------------------------------------------------------


class _StreamAccumulator:
    """Per-PC execution and (multi-config) miss counts across chunks.

    Rows are assigned to PCs first-seen; :meth:`columns` re-sorts by PC
    so results align with the in-memory engines' ``np.unique`` axis.
    """

    def __init__(self, num_configs: int) -> None:
        self._rows: dict[int, int] = {}
        self._capacity = 1024
        self._executions = np.zeros(self._capacity, dtype=np.int64)
        self._misses = np.zeros((num_configs, self._capacity), dtype=np.int64)

    def _grow(self, needed: int) -> None:
        while self._capacity < needed:
            self._capacity *= 2
        executions = np.zeros(self._capacity, dtype=np.int64)
        executions[: len(self._executions)] = self._executions
        misses = np.zeros((self._misses.shape[0], self._capacity), dtype=np.int64)
        misses[:, : self._misses.shape[1]] = self._misses
        self._executions = executions
        self._misses = misses

    def add(self, pcs: np.ndarray, missed_per_config: list[np.ndarray]) -> None:
        unique_pcs, codes = np.unique(pcs, return_inverse=True)
        rows_map = self._rows
        rows = np.empty(len(unique_pcs), dtype=np.int64)
        for i, pc in enumerate(unique_pcs.tolist()):
            row = rows_map.get(pc)
            if row is None:
                row = len(rows_map)
                rows_map[pc] = row
            rows[i] = row
        if len(rows_map) > self._capacity:
            self._grow(len(rows_map))
        self._executions[rows] += np.bincount(codes, minlength=len(unique_pcs))
        for config, missed in enumerate(missed_per_config):
            self._misses[config][rows] += np.bincount(
                codes[missed], minlength=len(unique_pcs)
            )

    def columns(self) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
        """(sorted unique pcs, executions, per-config miss counts)."""
        count = len(self._rows)
        pcs = np.fromiter(self._rows.keys(), dtype=np.int64, count=count)
        order = np.argsort(pcs, kind="stable")
        pcs = pcs[order]
        executions = self._executions[:count][order]
        misses = [row[:count][order] for row in self._misses]
        return pcs, executions, misses


# -- public entry points ------------------------------------------------------


def simulate_stream(
    predictor,
    chunks: Iterable,
    *,
    engine: str = "auto",
    backend: str | None = None,
    trace_name: str | None = None,
) -> SimulationResult:
    """Simulate one predictor over a chunk iterator.

    Bit-identical to ``simulate(predictor, concat(chunks))`` with peak
    memory O(chunk).  ``predictor`` may be a stateful
    :class:`~repro.predictors.base.BranchPredictor` or a declarative
    :class:`~repro.spec.PredictorSpec`; chunks are
    :class:`~repro.trace.stream.Trace` objects (e.g. a
    :class:`~repro.trace.io.TraceReader`) or ``(pcs, outcomes)`` pairs.
    ``backend`` picks the compiled-kernel implementation for the
    reference-path families (see :mod:`repro.engine.backend`).
    """
    from ..spec import build_predictor  # lazy: spec imports engine

    predictor = build_predictor(predictor)
    simulator = stream_simulator(predictor, engine=engine, backend=backend)
    accumulator = _StreamAccumulator(1)
    name = trace_name
    for chunk in chunks:
        pcs, outcomes, chunk_name = _as_columns(chunk)
        if name is None and chunk_name:
            name = chunk_name
        if len(pcs) == 0:
            continue
        predictions = simulator.feed(pcs, outcomes)
        accumulator.add(pcs, [predictions != outcomes])
    pcs, executions, misses = accumulator.columns()
    return SimulationResult(
        pcs,
        executions,
        misses[0],
        predictor_name=predictor.name,
        trace_name=name or "",
    )


class BatchedStream:
    """Chunked driver of the batched multi-configuration engine.

    Shares one global-history window, one per-BHT-geometry window and
    stacked per-segment-initial counter scans across every two-level
    configuration in the batch, exactly like
    :func:`repro.engine.batched.predictions_batched` — but fed chunk by
    chunk, with all carried state (history registers at the *longest*
    requested length per geometry, one PHT per unique configuration)
    advancing across chunk boundaries.
    """

    def __init__(
        self,
        predictors,
        *,
        max_chunk_elements: int = DEFAULT_MAX_CHUNK_ELEMENTS,
    ) -> None:
        if max_chunk_elements < 1:
            raise ConfigurationError("max_chunk_elements must be positive")
        self.max_chunk_elements = max_chunk_elements
        specs = [_spec_of(p) for p in predictors]

        # Shared carried history state: global at the longest global
        # length; one BHT per geometry at that geometry's longest length
        # (shorter configs mask the same windows down).
        global_bits = max(
            (s.history_bits for s in specs if s.history_kind == "global"), default=0
        )
        self._global = _GlobalHistoryState(global_bits) if global_bits else None
        bht_bits: dict[int, int] = {}
        for s in specs:
            if s.history_kind == "per-address" and s.history_bits > 0:
                bht_bits[s.bht_entries] = max(
                    bht_bits.get(s.bht_entries, 0), s.history_bits
                )
        self._bht = {
            entries: _SlotHistoryState(entries, bits)
            for entries, bits in bht_bits.items()
        }

        # Unique configurations (identical geometries share one PHT).
        self._slot_of_spec: list[int] = []
        self._unique: list = []
        self._tables: list[np.ndarray] = []
        slot_by_key: dict[tuple, int] = {}
        for s in specs:
            key = s.dedupe_key()
            slot = slot_by_key.get(key)
            if slot is None:
                slot = len(self._unique)
                slot_by_key[key] = slot
                self._unique.append(s)
                initial = 1 << (s.counter_bits - 1)
                self._tables.append(
                    np.full(1 << s.pht_index_bits, initial, dtype=np.uint8)
                )
            self._slot_of_spec.append(slot)

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> list[np.ndarray]:
        """Per-step predictions of every predictor for one chunk."""
        n = len(pcs)
        if n == 0:
            return [np.zeros(0, dtype=np.uint8) for _ in self._slot_of_spec]
        out_i64 = outcomes.astype(np.int64)
        global_hist = self._global.windows(out_i64) if self._global else None
        bht_hist = {
            entries: state.windows(pcs, out_i64)
            for entries, state in self._bht.items()
        }

        unique_indices: list[np.ndarray] = []
        for s in self._unique:
            if s.history_bits == 0:
                hist = np.zeros(n, dtype=np.int64)
            elif s.history_kind == "global":
                hist = global_hist & ((1 << s.history_bits) - 1)
            else:
                hist = bht_hist[s.bht_entries] & ((1 << s.history_bits) - 1)
            unique_indices.append(
                _pht_indices(
                    pcs,
                    hist,
                    index_scheme=s.index_scheme,
                    history_bits=s.history_bits,
                    pht_index_bits=s.pht_index_bits,
                )
            )

        unique_predictions: list[np.ndarray | None] = [None] * len(self._unique)
        by_counter_bits: dict[int, list[int]] = {}
        for slot, s in enumerate(self._unique):
            by_counter_bits.setdefault(s.counter_bits, []).append(slot)
        per_chunk = max(1, self.max_chunk_elements // n)
        for counter_bits, slots in by_counter_bits.items():
            threshold = 1 << (counter_bits - 1)
            max_state = (1 << counter_bits) - 1
            for start in range(0, len(slots), per_chunk):
                group = slots[start : start + per_chunk]
                stacked = self._stacked_scan(
                    group, unique_indices, outcomes, threshold, max_state, n
                )
                for slot, predictions in zip(group, stacked):
                    unique_predictions[slot] = predictions
        return [unique_predictions[slot] for slot in self._slot_of_spec]

    def _stacked_scan(
        self,
        group: list[int],
        unique_indices: list[np.ndarray],
        outcomes: np.ndarray,
        threshold: int,
        max_state: int,
        n: int,
    ) -> list[np.ndarray]:
        """One stacked per-segment-initial scan over several configs,
        advancing each config's carried PHT."""
        count = len(group)
        stride = 1 << max(self._unique[slot].pht_index_bits for slot in group)
        keys = np.empty(count * n, dtype=np.int64)
        init = np.empty(count * n, dtype=np.uint8)
        for i, slot in enumerate(group):
            indices = unique_indices[slot]
            keys[i * n : (i + 1) * n] = indices + i * stride
            init[i * n : (i + 1) * n] = self._tables[slot][indices]
        inputs = np.tile(outcomes, count)

        order = stable_key_order(keys, (count * stride - 1).bit_length())
        sorted_keys = keys[order]
        starts = np.empty(count * n, dtype=bool)
        starts[0] = True
        starts[1:] = sorted_keys[1:] != sorted_keys[:-1]
        sorted_inputs = inputs[order]

        state_before = segmented_saturating_scan(
            sorted_inputs, starts, init[order], max_state
        )

        # Advance every touched counter past its final step in the chunk.
        last = _last_in_group(starts)
        final = state_before[last].astype(np.int64) + np.where(
            sorted_inputs[last].astype(bool), 1, -1
        )
        final = np.clip(final, 0, max_state).astype(np.uint8)
        last_keys = sorted_keys[last]
        for i, slot in enumerate(group):
            mask = (last_keys >= i * stride) & (last_keys < (i + 1) * stride)
            self._tables[slot][last_keys[mask] - i * stride] = final[mask]

        predictions = np.empty(count * n, dtype=np.uint8)
        predictions[order] = (state_before >= threshold).astype(np.uint8)
        return [predictions[i * n : (i + 1) * n] for i in range(count)]


def simulate_batched_stream(
    predictors,
    chunks: Iterable,
    *,
    max_chunk_elements: int = DEFAULT_MAX_CHUNK_ELEMENTS,
    trace_name: str | None = None,
    workers: int | str | None = None,
) -> list[SimulationResult]:
    """Streaming counterpart of :func:`repro.engine.simulate_batched`.

    Bit-identical results with peak memory O(chunk × configs-per-pass)
    instead of O(trace).  ``workers`` (default: ``REPRO_SWEEP_WORKERS``,
    else 1) enables the speculative intra-trace pipeline of
    :mod:`repro.engine.parallel`; results are bit-identical for every
    worker count.
    """
    from .parallel import (
        resolve_workers,
        simulate_batched_stream_parallel,
        supports_parallel_sweep,
    )

    predictors = list(predictors)
    worker_count = resolve_workers(workers)
    if worker_count > 1 and supports_parallel_sweep(predictors):
        return simulate_batched_stream_parallel(
            predictors,
            chunks,
            workers=worker_count,
            max_chunk_elements=max_chunk_elements,
            trace_name=trace_name,
        )
    driver = BatchedStream(predictors, max_chunk_elements=max_chunk_elements)
    accumulator = _StreamAccumulator(len(predictors))
    name = trace_name
    for chunk in chunks:
        pcs, outcomes, chunk_name = _as_columns(chunk)
        if name is None and chunk_name:
            name = chunk_name
        if len(pcs) == 0:
            continue
        all_predictions = driver.feed(pcs, outcomes)
        accumulator.add(
            pcs, [predictions != outcomes for predictions in all_predictions]
        )
    pcs, executions, misses = accumulator.columns()
    return [
        SimulationResult(
            pcs,
            executions,
            miss_counts,
            predictor_name=predictor.name,
            trace_name=name or "",
        )
        for predictor, miss_counts in zip(predictors, misses)
    ]


def simulate_sweep_stream(
    chunks: Iterable,
    *,
    kinds=("pas", "gas"),
    history_lengths=None,
    max_chunk_elements: int = DEFAULT_MAX_CHUNK_ELEMENTS,
    trace_name: str | None = None,
    workers: int | str | None = None,
):
    """Streaming counterpart of :func:`repro.engine.batched.simulate_sweep`.

    The paper's full PAs/GAs sweep over a trace too big to hold in
    memory: one pass over the chunk iterator, every configuration's
    history windows and counter scans shared, results bit-identical to
    the in-memory sweep.  ``workers`` > 1 runs chunks speculatively on
    a thread pool (see :mod:`repro.engine.parallel`), still bit-exact.
    """
    from ..predictors.paper_configs import HISTORY_LENGTHS, paper_predictor
    from .batched import BatchedSweepResult

    if history_lengths is None:
        history_lengths = tuple(HISTORY_LENGTHS)
    keys = [(kind, int(k)) for kind in kinds for k in history_lengths]
    predictors = [paper_predictor(kind, k) for kind, k in keys]
    results = simulate_batched_stream(
        predictors,
        chunks,
        max_chunk_elements=max_chunk_elements,
        trace_name=trace_name,
        workers=workers,
    )

    miss_counts: dict[tuple[str, int], np.ndarray] = {}
    names: dict[tuple[str, int], str] = {}
    pcs = np.zeros(0, dtype=np.int64)
    executions = np.zeros(0, dtype=np.int64)
    resolved_name = trace_name or ""
    for key, result in zip(keys, results):
        pcs, executions = result.pcs, result.executions
        resolved_name = result.trace_name
        miss_counts[key] = result.mispredictions
        names[key] = result.predictor_name
    return BatchedSweepResult(resolved_name, pcs, executions, miss_counts, names)
