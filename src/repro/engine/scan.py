"""Segmented prefix scans over finite-state automata.

The vectorized engine reduces saturating-counter evolution to this
problem: given a sequence of input symbols partitioned into independent
segments (one segment per pattern-history-table entry), compute the
automaton state *before* each step, where every segment starts from the
same initial state and each input applies a fixed state-transition
function.

Because function composition is associative, the prefix compositions
can be computed with a Hillis–Steele doubling scan: O(n log n) work,
~log2(n) vectorized passes, no Python-level per-step loop.  For the
4-state 2-bit counters of the paper this is ~100× faster than stepping
in Python.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "segmented_automaton_scan",
    "segmented_saturating_scan",
    "counter_step_table",
]


def counter_step_table(bits: int) -> np.ndarray:
    """Transition table of an n-bit saturating counter.

    Returns an array of shape ``(2, 2**bits)``: row 0 is the
    "not-taken" (decrement) mapping, row 1 the "taken" (increment)
    mapping, each mapping old state to new state with saturation.
    """
    if not 1 <= bits <= 6:
        raise ConfigurationError(f"counter bits must be in [1, 6], got {bits}")
    states = np.arange(1 << bits, dtype=np.uint8)
    dec = np.maximum(states.astype(np.int64) - 1, 0).astype(np.uint8)
    inc = np.minimum(states.astype(np.int64) + 1, (1 << bits) - 1).astype(np.uint8)
    return np.stack([dec, inc])


def segmented_automaton_scan(
    step_table: np.ndarray,
    inputs: np.ndarray,
    segment_starts: np.ndarray,
    initial_state: int,
) -> np.ndarray:
    """State of the automaton *before* each step, per segment.

    Parameters
    ----------
    step_table:
        ``(num_symbols, num_states)`` array; ``step_table[sym, s]`` is
        the state after consuming ``sym`` in state ``s``.
    inputs:
        ``(n,)`` integer array of input symbols, already grouped so that
        each segment is a contiguous run (e.g. sorted by PHT index with
        a stable sort preserving time order within the segment).
    segment_starts:
        ``(n,)`` boolean array, True where a new segment begins.
        Position 0 must be a segment start for nonempty input.
    initial_state:
        State every segment starts in.

    Returns
    -------
    ``(n,)`` uint8 array: the automaton state immediately before each
    step was applied.
    """
    step_table = np.asarray(step_table, dtype=np.uint8)
    if step_table.ndim != 2:
        raise ConfigurationError("step_table must be 2-D (symbols x states)")
    num_states = step_table.shape[1]
    if not 0 <= initial_state < num_states:
        raise ConfigurationError(f"initial_state {initial_state} out of range")

    n = len(inputs)
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    segment_starts = np.asarray(segment_starts, dtype=bool)
    if len(segment_starts) != n:
        raise ConfigurationError("segment_starts must align with inputs")
    if not segment_starts[0]:
        raise ConfigurationError("position 0 must start a segment")

    # compositions[i] maps "state at segment start" -> "state after step i",
    # initially covering the single step i and doubled outward each pass.
    compositions = step_table[np.asarray(inputs, dtype=np.int64)]

    # boundary[i] = True once compositions[i] already reaches back to its
    # segment start, so it must not absorb anything further left.
    boundary = segment_starts.copy()
    rows = np.arange(n)

    offset = 1
    while offset < n:
        # Steps whose current composition window does not yet hit a
        # segment start can absorb the window ending `offset` earlier.
        can_extend = ~boundary
        can_extend[:offset] = False
        idx = rows[can_extend]
        prev = idx - offset
        # compose: first apply the earlier window, then the current one.
        compositions[idx] = np.take_along_axis(
            compositions[idx], compositions[prev], axis=1
        )
        # The extended window now starts where the absorbed window started.
        boundary[idx] = boundary[prev]
        offset <<= 1
        if np.all(boundary):
            break

    # State after step i = compositions[i][initial]; state before step i is
    # the state after step i-1, or the initial state at a segment start.
    state_after = compositions[:, initial_state]
    return _states_before(state_after, segment_starts, initial_state)


def segmented_saturating_scan(
    taken: np.ndarray,
    segment_starts: np.ndarray,
    initial_state: int,
    max_state: int,
) -> np.ndarray:
    """Specialized scan for saturating up/down counters.

    Semantically identical to :func:`segmented_automaton_scan` with
    ``counter_step_table`` inputs, but several times faster: a
    saturating-counter step is the clamp function
    ``x -> min(max(x + a, b), c)``, and clamp functions are closed under
    composition with a three-scalar closed form, so each doubling pass
    is a handful of elementwise int32 operations instead of per-state
    gathers.

    Parameters
    ----------
    taken:
        ``(n,)`` 0/1 array (1 increments the counter, 0 decrements),
        grouped so each segment is contiguous and in time order.
    segment_starts:
        ``(n,)`` boolean array, True where a new counter begins.
    initial_state, max_state:
        Counter start value and saturation ceiling (floor is 0).

    Returns
    -------
    ``(n,)`` uint8 array of counter values immediately before each step.
    """
    n = len(taken)
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    if not 0 <= initial_state <= max_state:
        raise ConfigurationError(f"initial_state {initial_state} out of range")
    segment_starts = np.asarray(segment_starts, dtype=bool)
    if len(segment_starts) != n:
        raise ConfigurationError("segment_starts must align with inputs")
    if not segment_starts[0]:
        raise ConfigurationError("position 0 must start a segment")

    # Window at position i is the clamp x -> min(max(x + add, lo), hi)
    # composed from the steps the window covers; initially just step i.
    add = np.where(np.asarray(taken, dtype=bool), 1, -1).astype(np.int32)
    lo = np.zeros(n, dtype=np.int32)
    hi = np.full(n, max_state, dtype=np.int32)
    bounded = segment_starts.copy()

    offset = 1
    while offset < n:
        # Only windows that have not yet reached their segment start can
        # grow; the working set shrinks geometrically for short segments.
        can_extend = ~bounded
        can_extend[:offset] = False
        idx = np.flatnonzero(can_extend)
        if idx.size == 0:
            break
        prev = idx - offset

        # Snapshot both operands before writing (Hillis–Steele reads
        # must all see the previous pass's values).
        prev_add, prev_lo, prev_hi = add[prev], lo[prev], hi[prev]
        cur_add, cur_lo, cur_hi = add[idx], lo[idx], hi[idx]

        # Compose: apply the earlier window first, then the current one.
        add[idx] = prev_add + cur_add
        lo[idx] = np.maximum(prev_lo + cur_add, cur_lo)
        hi[idx] = np.minimum(np.maximum(prev_hi + cur_add, cur_lo), cur_hi)
        bounded[idx] = bounded[prev]
        offset <<= 1

    state_after = np.minimum(np.maximum(initial_state + add, lo), hi).astype(np.uint8)
    return _states_before(state_after, segment_starts, initial_state)


def _states_before(state_after: np.ndarray, segment_starts: np.ndarray, initial_state: int) -> np.ndarray:
    """Shift after-states to before-states, reinitializing at segment starts."""
    n = len(state_after)
    state_before = np.empty(n, dtype=np.uint8)
    state_before[0] = initial_state
    state_before[1:] = state_after[:-1]
    state_before[segment_starts] = initial_state
    return state_before
