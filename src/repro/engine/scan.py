"""Segmented prefix scans over finite-state automata.

The vectorized engine reduces saturating-counter evolution to this
problem: given a sequence of input symbols partitioned into independent
segments (one segment per pattern-history-table entry), compute the
automaton state *before* each step, where every segment starts from the
same initial state and each input applies a fixed state-transition
function.

Because function composition is associative, the prefix compositions
can be computed with a Hillis–Steele doubling scan: O(n log n) work,
~log2(n) vectorized passes, no Python-level per-step loop.  For the
4-state 2-bit counters of the paper this is ~100× faster than stepping
in Python.

Both scans accept the initial state either as a scalar (every segment
starts there — the cold-start case) or as a per-element array whose
value is constant within each segment (each segment resumes from its
own carried state) — the hook the streaming engines
(:mod:`repro.engine.streaming`) use to continue counter evolution
across chunk boundaries bit-exactly.

The same algebra also supports *speculative* chunk execution
(:mod:`repro.engine.parallel`): a chunk's effect on a counter is a
monoid element independent of the counter's entry state
(:func:`segmented_monoid_scan` returns interned function ids instead
of states), and a chunk's effect on a shift-register history is the
pair ``(shift, bits)`` (:func:`history_effect`), closed under
composition (:func:`compose_history_effects`).  Workers can therefore
summarize chunks in parallel before any chunk's entry state is known,
and a cheap serial pass stitches the summaries together bit-exactly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ClampMonoid",
    "apply_history_effect",
    "clamp_monoid",
    "compose_history_effects",
    "counter_step_table",
    "history_effect",
    "segmented_automaton_scan",
    "segmented_monoid_scan",
    "segmented_saturating_scan",
    "stable_key_order",
]


def stable_key_order(keys: np.ndarray, key_bits: int) -> np.ndarray:
    """Stable argsort of non-negative integer keys below ``2**key_bits``.

    numpy's stable argsort only uses a radix sort for dtypes of at most
    16 bits; wider integer keys fall back to an O(n log n) mergesort.
    Grouping keys (PHT indices, BHT slots, stacked sweep keys) are
    small bounded integers, so sorting them as one or two explicit
    16-bit radix passes is several times faster — and exactly
    equivalent, since LSD radix passes compose stably.
    """
    if key_bits <= 16:
        return np.argsort(keys.astype(np.uint16), kind="stable")
    if key_bits <= 32:
        order = np.argsort((keys & 0xFFFF).astype(np.uint16), kind="stable")
        high = (keys >> 16).astype(np.uint16)
        return order[np.argsort(high[order], kind="stable")]
    return np.argsort(keys, kind="stable")


def counter_step_table(bits: int) -> np.ndarray:
    """Transition table of an n-bit saturating counter.

    Returns an array of shape ``(2, 2**bits)``: row 0 is the
    "not-taken" (decrement) mapping, row 1 the "taken" (increment)
    mapping, each mapping old state to new state with saturation.
    """
    if not 1 <= bits <= 6:
        raise ConfigurationError(f"counter bits must be in [1, 6], got {bits}")
    states = np.arange(1 << bits, dtype=np.uint8)
    dec = np.maximum(states.astype(np.int64) - 1, 0).astype(np.uint8)
    inc = np.minimum(states.astype(np.int64) + 1, (1 << bits) - 1).astype(np.uint8)
    return np.stack([dec, inc])


def segmented_automaton_scan(
    step_table: np.ndarray,
    inputs: np.ndarray,
    segment_starts: np.ndarray,
    initial_state: int,
) -> np.ndarray:
    """State of the automaton *before* each step, per segment.

    Parameters
    ----------
    step_table:
        ``(num_symbols, num_states)`` array; ``step_table[sym, s]`` is
        the state after consuming ``sym`` in state ``s``.
    inputs:
        ``(n,)`` integer array of input symbols, already grouped so that
        each segment is a contiguous run (e.g. sorted by PHT index with
        a stable sort preserving time order within the segment).
    segment_starts:
        ``(n,)`` boolean array, True where a new segment begins.
        Position 0 must be a segment start for nonempty input.
    initial_state:
        State every segment starts in; or a ``(n,)`` array of initial
        states, constant within each segment (each segment starts from
        its own value).

    Returns
    -------
    ``(n,)`` uint8 array: the automaton state immediately before each
    step was applied.
    """
    step_table = np.asarray(step_table, dtype=np.uint8)
    if step_table.ndim != 2:
        raise ConfigurationError("step_table must be 2-D (symbols x states)")
    num_states = step_table.shape[1]
    initial_state = _check_initial(initial_state, num_states - 1, len(inputs))

    n = len(inputs)
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    segment_starts = np.asarray(segment_starts, dtype=bool)
    if len(segment_starts) != n:
        raise ConfigurationError("segment_starts must align with inputs")
    if not segment_starts[0]:
        raise ConfigurationError("position 0 must start a segment")

    # compositions[i] maps "state at segment start" -> "state after step i",
    # initially covering the single step i and doubled outward each pass.
    compositions = step_table[np.asarray(inputs, dtype=np.int64)]

    # done[i] = True once compositions[i] can never change again: it
    # reaches back to its segment start, or it collapsed into a
    # *constant* mapping — constants absorb nothing further left, and a
    # window that absorbs a constant becomes constant itself, so the
    # stored mapping already equals that of every longer window.
    done = segment_starts | np.all(compositions == compositions[:, :1], axis=1)
    active = np.flatnonzero(~done)

    offset = 1
    while offset < n and active.size:
        # Windows at positions < offset have no predecessor window to
        # absorb; drop them from the working set for good.
        idx = active[active >= offset]
        if idx.size == 0:
            break
        prev = idx - offset

        # Snapshot the earlier windows before writing (Hillis–Steele
        # reads must all see the previous pass's values), then compose:
        # first apply the earlier window, then the current one.
        prev_comp = compositions[prev]
        prev_done = done[prev]
        new_comp = np.take_along_axis(compositions[idx], prev_comp, axis=1)
        compositions[idx] = new_comp
        done[idx] = prev_done | np.all(new_comp == new_comp[:, :1], axis=1)
        offset <<= 1
        active = idx[~done[idx]]

    # State after step i = compositions[i][initial]; state before step i is
    # the state after step i-1, or the initial state at a segment start.
    if isinstance(initial_state, np.ndarray):
        state_after = np.take_along_axis(
            compositions, initial_state[:, None].astype(np.int64), axis=1
        )[:, 0]
    else:
        state_after = compositions[:, initial_state]
    return _states_before(state_after, segment_starts, initial_state)


def segmented_saturating_scan(
    taken: np.ndarray,
    segment_starts: np.ndarray,
    initial_state: int,
    max_state: int,
) -> np.ndarray:
    """Specialized scan for saturating up/down counters.

    Semantically identical to :func:`segmented_automaton_scan` with
    ``counter_step_table`` inputs, but several times faster: a
    saturating-counter step is the clamp function
    ``x -> min(max(x + a, b), c)``, and clamp functions are closed under
    composition with a three-scalar closed form, so each doubling pass
    is a handful of elementwise int32 operations instead of per-state
    gathers.

    Parameters
    ----------
    taken:
        ``(n,)`` 0/1 array (1 increments the counter, 0 decrements),
        grouped so each segment is contiguous and in time order.
    segment_starts:
        ``(n,)`` boolean array, True where a new counter begins.
    initial_state, max_state:
        Counter start value and saturation ceiling (floor is 0).  The
        start value may also be a ``(n,)`` array, constant within each
        segment (each counter resumes from its own value).

    Returns
    -------
    ``(n,)`` uint8 array of counter values immediately before each step.
    """
    n = len(taken)
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    initial_state = _check_initial(initial_state, max_state, n)
    segment_starts = np.asarray(segment_starts, dtype=bool)
    if len(segment_starts) != n:
        raise ConfigurationError("segment_starts must align with inputs")
    if not segment_starts[0]:
        raise ConfigurationError("position 0 must start a segment")

    if max_state <= _MAX_TABLED_STATE:
        # Narrow counters (every predictor in the paper): compose clamp
        # functions as interned ids through a precomputed table — one
        # gather per element per pass instead of the arithmetic below.
        return _saturating_scan_tabled(taken, segment_starts, initial_state, max_state)

    # Window at position i is the clamp x -> min(max(x + add, lo), hi)
    # composed from the steps the window covers; initially just step i.
    add = np.where(np.asarray(taken, dtype=bool), 1, -1).astype(np.int32)
    lo = np.zeros(n, dtype=np.int32)
    hi = np.full(n, max_state, dtype=np.int32)

    # done[i] = True once window i can never change again: it reached its
    # segment start, or it saturated into a *constant* function
    # (lo >= hi).  Constants absorb nothing further left, and any later
    # window that absorbs a constant becomes constant itself, so the
    # stored function already equals the function of every longer
    # window — marking it done early is exact.  For b-bit counters this
    # caps the effective pass count near log2(2**b) regardless of
    # segment length.
    done = segment_starts.copy()
    active = np.flatnonzero(~done)

    offset = 1
    while offset < n and active.size:
        # Windows at positions < offset can never have a predecessor
        # window to absorb; drop them from the working set for good.
        idx = active[active >= offset]
        if idx.size == 0:
            break
        prev = idx - offset

        # Snapshot both operands before writing (Hillis–Steele reads
        # must all see the previous pass's values).
        prev_add, prev_lo, prev_hi = add[prev], lo[prev], hi[prev]
        prev_done = done[prev]
        cur_add, cur_lo, cur_hi = add[idx], lo[idx], hi[idx]

        # Compose: apply the earlier window first, then the current one.
        new_lo = np.maximum(prev_lo + cur_add, cur_lo)
        new_hi = np.minimum(np.maximum(prev_hi + cur_add, cur_lo), cur_hi)
        add[idx] = prev_add + cur_add
        lo[idx] = new_lo
        hi[idx] = new_hi
        done[idx] = prev_done | (new_lo >= new_hi)
        offset <<= 1
        active = idx[~done[idx]]

    init = (
        initial_state.astype(np.int32)
        if isinstance(initial_state, np.ndarray)
        else initial_state
    )
    state_after = np.minimum(np.maximum(init + add, lo), hi).astype(np.uint8)
    return _states_before(state_after, segment_starts, initial_state)


# The clamp functions reachable by composing saturating steps form a
# small monoid for narrow counters (2 functions for 1-bit, 17 for
# 2-bit, 147 for 3-bit — it grows ~cubically after that, so wider
# counters use the arithmetic path above).
_MAX_TABLED_STATE = 7


class ClampMonoid(NamedTuple):
    """Interned clamp-function monoid of a bounded saturating counter.

    * ``step_ids[sym]`` — function id of the decrement (0) / increment
      (1) step,
    * ``compose[cur, prev]`` — id of "apply ``prev`` first, then
      ``cur``",
    * ``values[id, state]`` — the function's value table,
    * ``constant[id]`` — True when the function is constant (its window
      can never change by extending further left),
    * ``identity`` — id of the identity function (an empty window; not
      reachable from any nonempty inc/dec word, so appending it leaves
      the generated ids untouched).
    """

    step_ids: np.ndarray
    compose: np.ndarray
    values: np.ndarray
    constant: np.ndarray
    identity: int


@lru_cache(maxsize=None)
def _clamp_monoid(max_state: int) -> ClampMonoid:
    states = range(max_state + 1)
    dec = tuple(max(x - 1, 0) for x in states)
    inc = tuple(min(x + 1, max_state) for x in states)

    # BFS closure under left-composition with the generators; every
    # inc/dec word is reachable this way, and the word set is closed
    # under arbitrary composition.
    ids: dict[tuple[int, ...], int] = {dec: 0, inc: 1}
    frontier = [dec, inc]
    while frontier:
        fresh = []
        for func in frontier:
            for gen in (dec, inc):
                composed = tuple(gen[x] for x in func)
                if composed not in ids:
                    ids[composed] = len(ids)
                    fresh.append(composed)
        frontier = fresh

    identity_tuple = tuple(states)
    if identity_tuple not in ids:
        ids[identity_tuple] = len(ids)

    functions = sorted(ids, key=ids.get)
    size = len(functions)
    compose = np.empty((size, size), dtype=np.uint8)
    for prev_tuple, prev_id in ids.items():
        for cur_tuple, cur_id in ids.items():
            compose[cur_id, prev_id] = ids[tuple(cur_tuple[x] for x in prev_tuple)]
    values = np.array(functions, dtype=np.uint8)
    constant = (values == values[:, :1]).all(axis=1)
    step_ids = np.array([ids[dec], ids[inc]], dtype=np.uint8)
    return ClampMonoid(step_ids, compose, values, constant, ids[identity_tuple])


def clamp_monoid(max_state: int) -> ClampMonoid:
    """The :class:`ClampMonoid` of a counter saturating at ``max_state``.

    Only narrow counters are tabled; wider ones raise (their scans use
    the three-scalar clamp arithmetic instead).
    """
    if not 1 <= max_state <= _MAX_TABLED_STATE:
        raise ConfigurationError(
            f"tabled monoid needs max_state in [1, {_MAX_TABLED_STATE}], got {max_state}"
        )
    return _clamp_monoid(max_state)


def _monoid_after_ids(
    taken: np.ndarray, segment_starts: np.ndarray, max_state: int
) -> np.ndarray:
    """Doubling scan over interned clamp-function ids: ``result[i]`` is
    the id of the composition of its segment's steps up to and
    *including* step ``i``."""
    n = len(taken)
    monoid = _clamp_monoid(max_state)
    step_ids, compose, constant = monoid.step_ids, monoid.compose, monoid.constant

    ids = step_ids[np.asarray(taken, dtype=np.uint8)]
    if constant[step_ids].any():  # 1-bit counters: single steps saturate
        done = segment_starts | constant[ids]
    else:
        done = segment_starts.copy()

    # First doubling pass, specialized: nearly every element is active,
    # so shifted whole-array operations beat gathering through an index
    # vector.  Operand snapshots keep the overlapping views read-safe.
    if n > 1:
        composed = compose[ids[1:], ids[:-1]]
        prev_done = done[:-1].copy()
        extend = ~done[1:]
        ids[1:] = np.where(extend, composed, ids[1:])
        done[1:] |= extend & (prev_done | constant[composed])
    active = np.flatnonzero(~done)

    offset = 2
    while offset < n and active.size:
        idx = active[active >= offset]
        if idx.size == 0:
            break
        prev = idx - offset
        prev_done = done[prev]
        new_ids = compose[ids[idx], ids[prev]]
        ids[idx] = new_ids
        finished = prev_done | constant[new_ids]
        done[idx] = finished
        offset <<= 1
        active = idx[~finished]
    return ids


def segmented_monoid_scan(
    taken: np.ndarray, segment_starts: np.ndarray, max_state: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-step clamp-function ids of a segmented counter scan.

    Returns ``(before_ids, after_ids)``: ``after_ids[i]`` composes the
    segment's steps through ``i``; ``before_ids[i]`` excludes step ``i``
    (the monoid identity at segment starts).  Unlike
    :func:`segmented_saturating_scan`, the result is independent of any
    initial state — the hook speculative chunk execution uses to
    summarize a chunk before its entry states are known, then evaluate
    ``values[before_ids[i], entry_state]`` once they are.
    """
    n = len(taken)
    monoid = clamp_monoid(max_state)
    if n == 0:
        empty = np.zeros(0, dtype=np.uint8)
        return empty, empty
    segment_starts = np.asarray(segment_starts, dtype=bool)
    if len(segment_starts) != n:
        raise ConfigurationError("segment_starts must align with inputs")
    if not segment_starts[0]:
        raise ConfigurationError("position 0 must start a segment")
    after_ids = _monoid_after_ids(taken, segment_starts, max_state)
    before_ids = np.empty(n, dtype=np.uint8)
    before_ids[1:] = after_ids[:-1]
    before_ids[segment_starts] = monoid.identity
    return before_ids, after_ids


def _saturating_scan_tabled(
    taken: np.ndarray,
    segment_starts: np.ndarray,
    initial_state: int,
    max_state: int,
) -> np.ndarray:
    """Doubling scan over interned clamp-function ids (narrow counters)."""
    ids = _monoid_after_ids(taken, segment_starts, max_state)
    values = _clamp_monoid(max_state).values
    if isinstance(initial_state, np.ndarray):
        state_after = values[ids, initial_state.astype(np.int64)]
    else:
        state_after = values[:, initial_state][ids]
    return _states_before(state_after, segment_starts, initial_state)


def _check_initial(initial_state, max_state: int, n: int):
    """Validate a scalar or per-element-array initial state."""
    if isinstance(initial_state, np.ndarray):
        if initial_state.shape != (n,):
            raise ConfigurationError(
                f"initial-state array must have shape ({n},), got {initial_state.shape}"
            )
        if len(initial_state) and not (
            0 <= int(initial_state.min()) and int(initial_state.max()) <= max_state
        ):
            raise ConfigurationError("initial-state array value out of range")
        return initial_state
    if not 0 <= initial_state <= max_state:
        raise ConfigurationError(f"initial_state {initial_state} out of range")
    return initial_state


def _states_before(
    state_after: np.ndarray, segment_starts: np.ndarray, initial_state
) -> np.ndarray:
    """Shift after-states to before-states, reinitializing at segment starts."""
    n = len(state_after)
    state_before = np.empty(n, dtype=np.uint8)
    state_before[1:] = state_after[:-1]
    if isinstance(initial_state, np.ndarray):
        state_before[0] = initial_state[0]
        state_before[segment_starts] = initial_state[segment_starts]
    else:
        state_before[0] = initial_state
        state_before[segment_starts] = initial_state
    return state_before


# -- history registers as shift-map effects -----------------------------------
#
# Pushing a run of outcomes through a k-bit shift register is the map
# value -> ((value << s) | v) & mask, where s = min(run length, k) and
# v packs the run's last s outcomes.  These maps are closed under
# composition, so a chunk's effect on every history register can be
# summarized without knowing the register's starting value — the
# shift-register counterpart of the clamp monoid above, and the other
# half of what speculative chunk execution needs.


def history_effect(outcomes: np.ndarray, bits: int) -> tuple[int, int]:
    """The ``(shift, value)`` effect of pushing ``outcomes`` (oldest
    first, 0/1) through a ``bits``-wide shift register."""
    if bits < 0:
        raise ConfigurationError(f"history length must be >= 0, got {bits}")
    shift = min(len(outcomes), bits)
    if shift == 0:
        return 0, 0
    tail = np.asarray(outcomes[-shift:], dtype=np.int64)
    weights = np.int64(1) << np.arange(shift - 1, -1, -1, dtype=np.int64)
    return shift, int(tail @ weights)


def compose_history_effects(
    first: tuple[int, int], second: tuple[int, int], bits: int
) -> tuple[int, int]:
    """The effect of applying ``first`` then ``second``."""
    first_shift, first_value = first
    second_shift, second_value = second
    shift = min(first_shift + second_shift, bits)
    return shift, ((first_value << second_shift) | second_value) & ((1 << shift) - 1)


def apply_history_effect(value: int, effect: tuple[int, int], bits: int) -> int:
    """The register value after an effect, from the value before it."""
    shift, pushed = effect
    return ((value << shift) | pushed) & ((1 << bits) - 1)
