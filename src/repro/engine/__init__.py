"""Predictor simulation engines.

:func:`simulate` is the front door: it dispatches to the fastest engine
that supports the predictor and produces identical
:class:`SimulationResult` objects whichever engine runs.

Engine-selection guide (see ``docs/ENGINES.md`` for the full story):

``reference`` (:func:`simulate_reference`)
    Step-accurate Python loop: predict, compare, train — exactly the
    paper's modified ``sim-bpred``.  Supports **every** predictor
    (YAGS, bi-mode, filter, DHLF, oracle, …).  The semantic ground
    truth; ~10⁵ steps/s.

``vectorized`` (:func:`simulate_vectorized`)
    Array simulation of one predictor via sliding-window histories and
    segmented counter scans.  Supports the two-level family
    (PAs/GAs/gshare/gselect/pshare/bimodal), static predictors, the
    agree predictor, tournament predictors, and class-routed hybrids
    whose components are themselves supported.  Bit-exact with the
    reference engine at 50–100× the speed.

``batched`` (:func:`simulate_batched` / :func:`simulate_sweep`)
    Multi-configuration engine: simulates *many* two-level
    configurations over one trace in a single pass, sharing history
    windows, PC encoding, and stacked segmented scans across the batch.
    This is what :func:`repro.analysis.history_sweep.run_sweep` uses
    for the paper's 34-configuration sweep (several-fold faster than
    per-config vectorized runs, still bit-exact).

``auto``
    Vectorized when supported, reference otherwise.  Sweep-level code
    additionally upgrades to the batched engine on ``"auto"``.

``streaming`` (:func:`simulate_stream` / :func:`simulate_sweep_stream`)
    Bounded-memory counterparts of the above: consume an *iterator of
    trace chunks* (e.g. a :class:`~repro.trace.io.TraceReader` over a
    chunked ``.rbt`` v2 file) with peak memory O(chunk) instead of
    O(trace), carrying all predictor state across chunk boundaries.
    Bit-identical to the in-memory engines; see ``docs/TRACES.md``.

Callers can pass either a stateful
:class:`~repro.predictors.base.BranchPredictor` or a declarative
:class:`~repro.spec.PredictorSpec` — specs are built on the way in.
For many jobs at once, prefer :class:`repro.session.Session`, which
plans spec jobs into batched invocations (see ``docs/API.md``).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..predictors.base import BranchPredictor
from ..spec import PredictorSpec, build_predictor
from ..trace.stream import Trace
from .batched import (
    BatchedSweepResult,
    predictions_batched,
    simulate_batched,
    simulate_sweep,
    supports_batched,
)
from .backend import (
    BACKENDS,
    backend_availability,
    compiled_stream,
    resolve_backend,
    supports_compiled,
)
from .parallel import resolve_workers, supports_parallel_sweep
from .reference import simulate_reference
from .results import BranchResult, SimulationResult
from .scan import counter_step_table, segmented_automaton_scan, segmented_saturating_scan
from .streaming import (
    simulate_batched_stream,
    simulate_stream,
    simulate_sweep_stream,
    stream_simulator,
    supports_stream_vectorized,
)
from .vectorized import predictions_vectorized, simulate_vectorized, supports_vectorized

__all__ = [
    "simulate",
    "simulate_reference",
    "simulate_vectorized",
    "simulate_batched",
    "simulate_sweep",
    "simulate_stream",
    "simulate_batched_stream",
    "simulate_sweep_stream",
    "stream_simulator",
    "predictions_vectorized",
    "predictions_batched",
    "supports_vectorized",
    "supports_batched",
    "supports_stream_vectorized",
    "BACKENDS",
    "backend_availability",
    "compiled_stream",
    "resolve_backend",
    "resolve_workers",
    "supports_compiled",
    "supports_parallel_sweep",
    "BatchedSweepResult",
    "SimulationResult",
    "BranchResult",
    "segmented_automaton_scan",
    "segmented_saturating_scan",
    "counter_step_table",
]


def simulate(
    predictor: BranchPredictor | PredictorSpec,
    trace: Trace,
    *,
    engine: str = "auto",
    backend: str | None = None,
) -> SimulationResult:
    """Simulate a predictor over a trace.

    Parameters
    ----------
    predictor:
        Any branch predictor, or a declarative
        :class:`~repro.spec.PredictorSpec` (built on entry).
    trace:
        Branch stream in program order.
    engine:
        ``"auto"`` (vectorized when supported, compiled per-record
        kernels for the YAGS/bi-mode/filter/DHLF families, reference
        otherwise), ``"vectorized"`` (error if unsupported),
        ``"batched"`` (two-level family only; single-predictor entry to
        the multi-config engine), or ``"reference"``.
    backend:
        Compiled-kernel implementation for the reference-path families
        (``python``/``numba``/``cext``/``auto``; see
        :mod:`repro.engine.backend` and docs/PERFORMANCE.md).  Default:
        ``REPRO_ENGINE_BACKEND``, else auto-detect.
    """
    predictor = build_predictor(predictor)
    if engine == "auto":
        if supports_vectorized(predictor):
            return simulate_vectorized(predictor, trace)
        compiled = _simulate_compiled(predictor, trace, backend)
        if compiled is not None:
            return compiled
        return simulate_reference(predictor, trace)
    if engine == "vectorized":
        return simulate_vectorized(predictor, trace)
    if engine == "batched":
        return simulate_batched([predictor], trace)[0]
    if engine == "reference":
        return simulate_reference(predictor, trace)
    raise ConfigurationError(
        f"unknown engine {engine!r}; expected 'auto', 'vectorized', "
        "'batched' or 'reference'"
    )


def _simulate_compiled(
    predictor: BranchPredictor, trace: Trace, backend: str | None
) -> SimulationResult | None:
    """Whole-trace simulation through a compiled per-record kernel, or
    None when the family has none (caller falls back to reference)."""
    import numpy as np

    from .backend import compiled_stream

    stream = compiled_stream(predictor, backend)
    if stream is None:
        return None
    predictions = stream.feed(trace.pcs, trace.outcomes)
    unique_pcs, codes = np.unique(trace.pcs, return_inverse=True)
    executions = np.bincount(codes, minlength=len(unique_pcs)).astype(np.int64)
    miss_counts = np.bincount(
        codes[predictions != trace.outcomes], minlength=len(unique_pcs)
    ).astype(np.int64)
    return SimulationResult(
        unique_pcs,
        executions,
        miss_counts,
        predictor_name=predictor.name,
        trace_name=trace.name,
    )
