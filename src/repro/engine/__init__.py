"""Predictor simulation engines.

:func:`simulate` is the front door: it dispatches to the vectorized
engine when the predictor supports it and to the step-accurate
reference engine otherwise.  Both produce identical
:class:`SimulationResult` objects.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..predictors.base import BranchPredictor
from ..trace.stream import Trace
from .reference import simulate_reference
from .results import BranchResult, SimulationResult
from .scan import counter_step_table, segmented_automaton_scan, segmented_saturating_scan
from .vectorized import predictions_vectorized, simulate_vectorized, supports_vectorized

__all__ = [
    "simulate",
    "simulate_reference",
    "simulate_vectorized",
    "predictions_vectorized",
    "supports_vectorized",
    "SimulationResult",
    "BranchResult",
    "segmented_automaton_scan",
    "segmented_saturating_scan",
    "counter_step_table",
]


def simulate(
    predictor: BranchPredictor,
    trace: Trace,
    *,
    engine: str = "auto",
) -> SimulationResult:
    """Simulate a predictor over a trace.

    Parameters
    ----------
    predictor:
        Any branch predictor.
    trace:
        Branch stream in program order.
    engine:
        ``"auto"`` (vectorized when supported), ``"vectorized"``
        (error if unsupported), or ``"reference"``.
    """
    if engine == "auto":
        if supports_vectorized(predictor):
            return simulate_vectorized(predictor, trace)
        return simulate_reference(predictor, trace)
    if engine == "vectorized":
        return simulate_vectorized(predictor, trace)
    if engine == "reference":
        return simulate_reference(predictor, trace)
    raise ConfigurationError(
        f"unknown engine {engine!r}; expected 'auto', 'vectorized' or 'reference'"
    )
