"""Batched multi-configuration sweep engine.

The paper's history sweep simulates 2 predictor kinds × 17 history
lengths over every benchmark trace.  Running each configuration through
:func:`~repro.engine.vectorized.simulate_vectorized` independently
repeats three expensive steps 34 times per trace: the ``np.unique``
PC encoding, the sliding-window history reconstruction, and the
argsort + segmented-scan pipeline.  This engine shares all of them:

1. **Histories once, masked per length.**  The k-bit history is the
   low k bits of the K-bit one (K ≥ k), so one window computation at
   the longest requested length serves every shorter length.  Global
   histories need exactly one window; per-address histories need one
   per distinct BHT geometry (the paper's PAs budget changes BHT entry
   counts with k, giving ~5 groups instead of 16 windows).
2. **One PC encoding.**  ``np.unique`` over the trace runs once and its
   codes are reused for every configuration's per-PC miss attribution.
3. **Stacked segmented scans.**  All configurations' (PHT index,
   outcome) streams are laid out in a single ``(config, n)`` stack with
   disjoint key ranges, so one stable argsort and one segmented
   saturating scan simulate every counter of every configuration —
   each Hillis–Steele doubling pass amortizes across the whole sweep.
   Stacks are chunked (``max_chunk_elements``) to bound peak memory.

Every prediction is bit-exact with simulating each configuration
separately (and hence with the reference engine); the equivalence is
pinned by ``tests/test_engine_batched.py``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..predictors.bimodal import BimodalPredictor
from ..predictors.paper_configs import HISTORY_LENGTHS, paper_predictor
from ..predictors.twolevel import TwoLevelPredictor
from ..trace.stream import Trace
from .results import SimulationResult
from .scan import segmented_saturating_scan, stable_key_order
from .vectorized import _bht_window, _global_window, _pht_indices

__all__ = [
    "predictions_batched",
    "simulate_batched",
    "simulate_sweep",
    "supports_batched",
    "BatchedSweepResult",
]

#: Default bound on elements per stacked scan.  Small chunks win twice:
#: the sort/scan working set stays cache-resident, and short traces
#: still stack many configurations per chunk so the doubling passes
#: amortize across the sweep (measured optimum ~128k elements; larger
#: chunks only add memory traffic).
DEFAULT_MAX_CHUNK_ELEMENTS = 1 << 17


def supports_batched(predictor) -> bool:
    """True if ``predictor`` can join a batched multi-config pass."""
    return isinstance(predictor, (TwoLevelPredictor, BimodalPredictor))


def predictions_batched(
    predictors,
    trace: Trace,
    *,
    max_chunk_elements: int = DEFAULT_MAX_CHUNK_ELEMENTS,
) -> list[np.ndarray]:
    """Per-step predictions for many two-level predictors in one pass.

    Bit-exact with calling
    :func:`~repro.engine.vectorized.predictions_vectorized` on each
    predictor separately, but history windows, sorts and scans are
    shared across the whole batch.

    Parameters
    ----------
    predictors:
        Two-level family predictors (:class:`TwoLevelPredictor` or
        :class:`BimodalPredictor`).  Duplicated geometries are detected
        and simulated once.
    trace:
        Branch stream in program order.
    max_chunk_elements:
        Upper bound on ``len(predictors_in_chunk) * len(trace)`` per
        stacked scan, bounding peak memory.
    """
    if max_chunk_elements < 1:
        raise ConfigurationError("max_chunk_elements must be positive")
    specs = [_spec_of(p) for p in predictors]
    n = len(trace)
    if n == 0:
        return [np.zeros(0, dtype=np.uint8) for _ in specs]

    pcs = trace.pcs
    outcomes = trace.outcomes.astype(np.int64)

    # -- shared history windows (longest length per geometry, masked down)
    global_bits = max((s.history_bits for s in specs if s.history_kind == "global"), default=0)
    global_hist = _global_window(outcomes, global_bits) if global_bits else None
    bht_bits: dict[int, int] = {}
    for s in specs:
        if s.history_kind == "per-address" and s.history_bits > 0:
            bht_bits[s.bht_entries] = max(bht_bits.get(s.bht_entries, 0), s.history_bits)
    bht_hist = {
        entries: _bht_window(pcs, outcomes, bits, entries)
        for entries, bits in bht_bits.items()
    }

    # -- per-config PHT index arrays, deduplicating identical geometries
    # (the paper's PAs-h0 and GAs-h0 are the same machine).
    slot_of_spec: list[int] = []
    unique_indices: list[np.ndarray] = []
    unique_specs: list[_Spec] = []
    slot_by_key: dict[tuple, int] = {}
    for s in specs:
        key = s.dedupe_key()
        slot = slot_by_key.get(key)
        if slot is None:
            if s.history_bits == 0:
                hist = np.zeros(n, dtype=np.int64)
            elif s.history_kind == "global":
                hist = global_hist & ((1 << s.history_bits) - 1)
            else:
                hist = bht_hist[s.bht_entries] & ((1 << s.history_bits) - 1)
            slot = len(unique_indices)
            slot_by_key[key] = slot
            unique_indices.append(
                _pht_indices(
                    pcs,
                    hist,
                    index_scheme=s.index_scheme,
                    history_bits=s.history_bits,
                    pht_index_bits=s.pht_index_bits,
                )
            )
            unique_specs.append(s)
        slot_of_spec.append(slot)

    # -- stacked segmented scans, grouped by counter width and chunked
    unique_predictions: list[np.ndarray | None] = [None] * len(unique_specs)
    outcomes_u8 = trace.outcomes
    by_counter_bits: dict[int, list[int]] = {}
    for slot, s in enumerate(unique_specs):
        by_counter_bits.setdefault(s.counter_bits, []).append(slot)
    per_chunk = max(1, max_chunk_elements // n)
    for counter_bits, slots in by_counter_bits.items():
        initial = 1 << (counter_bits - 1)  # weakly taken
        max_state = (1 << counter_bits) - 1
        for start in range(0, len(slots), per_chunk):
            chunk = slots[start : start + per_chunk]
            stacked = _stacked_scan(
                [unique_indices[slot] for slot in chunk],
                [unique_specs[slot].pht_index_bits for slot in chunk],
                outcomes_u8,
                initial=initial,
                max_state=max_state,
            )
            for slot, predictions in zip(chunk, stacked):
                unique_predictions[slot] = predictions

    return [unique_predictions[slot] for slot in slot_of_spec]


def simulate_batched(
    predictors,
    trace: Trace,
    *,
    max_chunk_elements: int = DEFAULT_MAX_CHUNK_ELEMENTS,
) -> list[SimulationResult]:
    """Cold-start simulation of many predictors with per-PC attribution.

    Each returned result is exactly what ``simulate_reference`` (or
    ``simulate_vectorized``) would produce for that predictor, but the
    PC encoding and the counter scans are shared across the batch.
    """
    all_predictions = predictions_batched(
        predictors, trace, max_chunk_elements=max_chunk_elements
    )
    unique_pcs, codes = np.unique(trace.pcs, return_inverse=True)
    executions = np.bincount(codes, minlength=len(unique_pcs)).astype(np.int64)
    results = []
    for predictor, predictions in zip(predictors, all_predictions):
        # Mispredictions are 0/1, so counting the missed codes directly
        # beats a float-weighted bincount over the whole trace.
        miss_counts = np.bincount(
            codes[predictions != trace.outcomes], minlength=len(unique_pcs)
        ).astype(np.int64)
        results.append(
            SimulationResult(
                unique_pcs,
                executions,
                miss_counts,
                predictor_name=predictor.name,
                trace_name=trace.name,
            )
        )
    return results


class BatchedSweepResult:
    """Per-(kind, history length) simulation results over one trace.

    All results share one sorted unique-PC axis and one executions
    column; :meth:`result` materializes the standard
    :class:`SimulationResult` view for a configuration.
    """

    def __init__(
        self,
        trace_name: str,
        pcs: np.ndarray,
        executions: np.ndarray,
        miss_counts: dict[tuple[str, int], np.ndarray],
        predictor_names: dict[tuple[str, int], str],
    ) -> None:
        self.trace_name = trace_name
        self.pcs = pcs
        self.executions = executions
        self._miss_counts = miss_counts
        self._predictor_names = predictor_names

    def keys(self) -> list[tuple[str, int]]:
        """The simulated (kind, history length) pairs."""
        return list(self._miss_counts)

    def mispredictions(self, kind: str, history_bits: int) -> np.ndarray:
        """Per-PC misprediction counts for one configuration."""
        try:
            return self._miss_counts[(kind, history_bits)]
        except KeyError:
            raise ConfigurationError(
                f"sweep did not simulate ({kind!r}, {history_bits})"
            ) from None

    def result(self, kind: str, history_bits: int) -> SimulationResult:
        """The full :class:`SimulationResult` for one configuration."""
        return SimulationResult(
            self.pcs,
            self.executions,
            self.mispredictions(kind, history_bits),
            predictor_name=self._predictor_names[(kind, history_bits)],
            trace_name=self.trace_name,
        )


def simulate_sweep(
    trace: Trace,
    *,
    kinds=("pas", "gas"),
    history_lengths=tuple(HISTORY_LENGTHS),
    max_chunk_elements: int = DEFAULT_MAX_CHUNK_ELEMENTS,
) -> BatchedSweepResult:
    """Simulate the paper's PAs/GAs sweep over ``trace`` in one pass.

    Bit-exact with simulating ``paper_predictor(kind, k)`` separately
    for every (kind, k), at a fraction of the cost (see
    ``docs/ENGINES.md``).
    """
    keys = [(kind, int(k)) for kind in kinds for k in history_lengths]
    predictors = [paper_predictor(kind, k) for kind, k in keys]
    results = simulate_batched(predictors, trace, max_chunk_elements=max_chunk_elements)

    miss_counts: dict[tuple[str, int], np.ndarray] = {}
    names: dict[tuple[str, int], str] = {}
    pcs = np.zeros(0, dtype=np.int64)
    executions = np.zeros(0, dtype=np.int64)
    for key, result in zip(keys, results):
        pcs, executions = result.pcs, result.executions
        miss_counts[key] = result.mispredictions
        names[key] = result.predictor_name
    return BatchedSweepResult(trace.name, pcs, executions, miss_counts, names)


# -- internals ---------------------------------------------------------------


class _Spec:
    """Geometry of one two-level configuration, decoupled from the object."""

    __slots__ = (
        "history_kind",
        "history_bits",
        "pht_index_bits",
        "index_scheme",
        "bht_entries",
        "counter_bits",
    )

    def __init__(
        self, history_kind, history_bits, pht_index_bits, index_scheme, bht_entries, counter_bits
    ):
        self.history_kind = history_kind
        self.history_bits = history_bits
        self.pht_index_bits = pht_index_bits
        self.index_scheme = index_scheme
        self.bht_entries = bht_entries
        self.counter_bits = counter_bits

    def dedupe_key(self) -> tuple:
        # With zero history bits the history kind and BHT are irrelevant:
        # every variant is the same PC-indexed counter table.
        if self.history_bits == 0:
            return ("none", 0, self.pht_index_bits, self.index_scheme, None, self.counter_bits)
        return (
            self.history_kind,
            self.history_bits,
            self.pht_index_bits,
            self.index_scheme,
            self.bht_entries if self.history_kind == "per-address" else None,
            self.counter_bits,
        )


def _spec_of(predictor) -> _Spec:
    if isinstance(predictor, BimodalPredictor):
        return _Spec("global", 0, predictor.table.index_bits, "concat", None, predictor.table.bits)
    if isinstance(predictor, TwoLevelPredictor):
        return _Spec(
            predictor.history_kind,
            predictor.history_bits,
            predictor.pht_index_bits,
            predictor.index_scheme,
            predictor.bht.entries if predictor.bht is not None else None,
            predictor.pht.bits,
        )
    raise ConfigurationError(
        f"batched engine cannot simulate {type(predictor).__name__}; "
        "use simulate() per predictor"
    )


def _stacked_scan(
    index_arrays: list[np.ndarray],
    pht_index_bits: list[int],
    outcomes: np.ndarray,
    *,
    initial: int,
    max_state: int,
) -> list[np.ndarray]:
    """Segmented counter scans for several configs in one stacked pass."""
    n = len(outcomes)
    count = len(index_arrays)
    # Offset each config into a disjoint key range so one stable sort
    # groups (config, PHT entry) segments while preserving time order.
    stride = 1 << max(pht_index_bits)
    keys = np.empty(count * n, dtype=np.int64)
    for i, indices in enumerate(index_arrays):
        keys[i * n : (i + 1) * n] = indices + i * stride
    inputs = np.tile(outcomes, count)

    order = stable_key_order(keys, (count * stride - 1).bit_length())
    sorted_keys = keys[order]
    starts = np.empty(count * n, dtype=bool)
    starts[0] = True
    starts[1:] = sorted_keys[1:] != sorted_keys[:-1]

    state_before = segmented_saturating_scan(inputs[order], starts, initial, max_state)
    predictions = np.empty(count * n, dtype=np.uint8)
    predictions[order] = (state_before >= initial).astype(np.uint8)
    return [predictions[i * n : (i + 1) * n] for i in range(count)]
