"""Execution-backend selection for the reference-path predictor families.

Four families (YAGS, bi-mode, filter-over-two-level, DHLF) carry state
that defeats the segmented-scan engines, so they advance one record at
a time.  This module picks *how* that per-record loop runs:

``python``
    The :mod:`repro.engine.compiled.kernels` loops interpreted by
    CPython.  Always available; bit-identical to the stateful
    reference predictors.
``numba``
    The same loops jitted by numba (:mod:`repro.engine.compiled.njit`).
    Available only when numba is importable.
``cext``
    A C transliteration built on demand with the host C compiler and
    loaded through ctypes (:mod:`repro.engine.compiled.cext`).
    Available when a working compiler is found.
``auto``
    The fastest available: ``numba`` → ``cext`` → ``python``.

Selection order: explicit argument (``--backend`` on the CLI,
``backend=`` in the API) beats the ``REPRO_ENGINE_BACKEND`` environment
variable, which beats ``auto``.  Requesting an unavailable backend by
name is a :class:`~repro.errors.ConfigurationError` (only ``auto``
falls back silently); every backend emits byte-identical predictions,
pinned by ``tests/test_engine_backend.py``.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ConfigurationError
from ..predictors.bimodal import BimodalPredictor
from ..predictors.bimode import BiModePredictor
from ..predictors.dhlf import DhlfPredictor
from ..predictors.filter import FilterPredictor
from ..predictors.twolevel import TwoLevelPredictor
from ..predictors.yags import YagsPredictor
from .compiled import cext, kernels, njit

__all__ = [
    "BACKENDS",
    "backend_availability",
    "compiled_stream",
    "resolve_backend",
    "supports_compiled",
]

#: Recognised values of ``REPRO_ENGINE_BACKEND`` / ``--backend``.
BACKENDS = ("auto", "python", "numba", "cext")

_KERNEL_NAMES = ("yags_step", "bimode_step", "filter_step", "dhlf_step")


def backend_availability() -> dict[str, tuple[bool, str]]:
    """``{backend: (usable, reason)}`` for every concrete backend.

    Probing ``cext`` triggers (at most once per process) an on-demand
    compile of the C kernels; probing ``numba`` only attempts the
    import, so the first jitted call still pays compilation.
    """
    return {
        "python": (True, "interpreted kernels (always available)"),
        "numba": njit.available(),
        "cext": cext.available(),
    }


def resolve_backend(backend: str | None = None) -> str:
    """The concrete backend to use: ``python``, ``numba`` or ``cext``.

    ``None`` defers to ``REPRO_ENGINE_BACKEND`` (default ``auto``).
    ``auto`` prefers numba, then the C extension, then the interpreted
    kernels; naming an unavailable backend raises.
    """
    if backend is None:
        backend = os.environ.get("REPRO_ENGINE_BACKEND", "auto") or "auto"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        for candidate in ("numba", "cext"):
            usable, _ = backend_availability()[candidate]
            if usable:
                return candidate
        return "python"
    if backend != "python":
        usable, reason = backend_availability()[backend]
        if not usable:
            raise ConfigurationError(f"backend {backend!r} is unavailable: {reason}")
    return backend


def _kernel_table(resolved: str) -> dict[str, object]:
    if resolved == "python":
        return {name: getattr(kernels, name) for name in _KERNEL_NAMES}
    if resolved == "numba":
        return njit.load()
    assert resolved == "cext"
    return cext.load()


def supports_compiled(predictor) -> bool:
    """True if ``predictor`` has a compiled per-record kernel.

    Filter predictors qualify only over two-level/bimodal backings
    (other backings keep the object-based reference stream).
    """
    if isinstance(predictor, (YagsPredictor, BiModePredictor, DhlfPredictor)):
        return True
    if isinstance(predictor, FilterPredictor):
        return isinstance(predictor.backing, (TwoLevelPredictor, BimodalPredictor))
    return False


# -- per-family kernel streams -------------------------------------------------
#
# Each stream owns the flat state arrays of one freshly-reset predictor
# and exposes the same ``feed(pcs, outcomes) -> predictions`` protocol
# as the carriers in repro.engine.streaming, so stream_simulator can
# route to them transparently.


class _KernelStream:
    """Carried kernel state plus the chunk-at-a-time driver."""

    __slots__ = ("kernel", "regs", "params", "state")

    def __init__(self, kernel, regs, params, state) -> None:
        self.kernel = kernel
        self.regs = np.asarray(regs, dtype=np.int64)
        self.params = np.asarray(params, dtype=np.int64)
        self.state = state

    def feed(self, pcs: np.ndarray, outcomes: np.ndarray) -> np.ndarray:
        n = len(pcs)
        predictions = np.empty(n, dtype=np.uint8)
        if n:
            pcs = np.ascontiguousarray(pcs, dtype=np.int64)
            outcomes = np.ascontiguousarray(outcomes, dtype=np.uint8)
            self.kernel(pcs, outcomes, predictions, self.regs, self.params, *self.state)
        return predictions


def _yags_stream(predictor: YagsPredictor, kernel) -> _KernelStream:
    cache_entries = predictor._cache_mask + 1
    choice = np.full(
        predictor.choice.entries, predictor.choice.initial, dtype=np.uint8
    )
    state = [choice]
    for _ in ("t", "nt"):
        state.append(np.zeros(cache_entries, dtype=np.int64))  # tags
        state.append(np.zeros(cache_entries, dtype=np.uint8))  # valid
        state.append(np.full(cache_entries, 2, dtype=np.uint8))  # counters
    params = [
        (1 << predictor.history.bits) - 1,
        predictor._cache_mask,
        predictor._choice_mask,
        predictor.t_cache._tag_mask,
    ]
    return _KernelStream(kernel, [0], params, tuple(state))


def _bimode_stream(predictor: BiModePredictor, kernel) -> _KernelStream:
    banks = [
        np.full(table.entries, table.initial, dtype=np.uint8)
        for table in (predictor.taken_bank, predictor.not_taken_bank, predictor.choice)
    ]
    params = [
        (1 << predictor.history.bits) - 1,
        predictor._dir_mask,
        predictor._choice_mask,
    ]
    return _KernelStream(kernel, [0], params, tuple(banks))


def _filter_stream(predictor: FilterPredictor, kernel) -> _KernelStream:
    backing = predictor.backing
    if isinstance(backing, BimodalPredictor):
        table = backing.table
        history_kind, index_scheme, history_bits = 0, 0, 0
        pc_fill_bits, bht_entries = table.index_bits, 1
    else:
        table = backing.pht
        history_kind = 0 if backing.history_kind == "global" else 1
        index_scheme = 0 if backing.index_scheme == "concat" else 1
        history_bits = backing.history_bits
        pc_fill_bits = backing.pht_index_bits - history_bits
        bht_entries = backing.bht.entries if backing.bht is not None else 1
    entries = predictor._mask + 1
    state = (
        np.zeros(entries, dtype=np.uint8),  # bias
        np.zeros(entries, dtype=np.uint16),  # run counters
        np.full(table.entries, table.initial, dtype=np.uint8),  # backing PHT
        np.zeros(bht_entries, dtype=np.int64),  # backing BHT rows
    )
    params = [
        predictor._mask,
        predictor.threshold,
        predictor._max_count,
        history_kind,
        index_scheme,
        history_bits,
        table.entries - 1,
        pc_fill_bits,
        bht_entries - 1,
        1 << (table.bits - 1),
        (1 << table.bits) - 1,
        (1 << history_bits) - 1,
    ]
    return _KernelStream(kernel, [0], params, state)


def _dhlf_stream(predictor: DhlfPredictor, kernel) -> _KernelStream:
    state = (
        np.full(predictor.pht.entries, predictor.pht.initial, dtype=np.uint8),
        np.zeros(predictor.max_history + 1, dtype=np.int64),  # explore misses
    )
    params = [
        predictor._mask,
        (1 << predictor.max_history) - 1,
        predictor.interval,
        predictor.max_history,
        predictor.EXPLOIT_INTERVALS,
    ]
    # A fresh DhlfPredictor immediately pops exploration length 0, so
    # the kernel starts at [ghr=0, length=0, misses=0, count=0,
    # exploit_remaining=0, next_explore=1].
    regs = np.zeros(kernels.DHLF_REGS, dtype=np.int64)
    regs[kernels.DHLF_NEXT_EXPLORE] = 1
    return _KernelStream(kernel, regs, params, state)


def compiled_stream(predictor, backend: str | None = None):
    """A kernel-backed chunk stream for ``predictor``, or None when the
    family has no compiled kernel (caller falls back to the reference
    stream).  The stream always starts from reset state, like every
    carrier in :mod:`repro.engine.streaming`.
    """
    if not supports_compiled(predictor):
        return None
    table = _kernel_table(resolve_backend(backend))
    if isinstance(predictor, YagsPredictor):
        return _yags_stream(predictor, table["yags_step"])
    if isinstance(predictor, BiModePredictor):
        return _bimode_stream(predictor, table["bimode_step"])
    if isinstance(predictor, FilterPredictor):
        return _filter_stream(predictor, table["filter_step"])
    assert isinstance(predictor, DhlfPredictor)
    return _dhlf_stream(predictor, table["dhlf_step"])
