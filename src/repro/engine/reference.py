"""Step-accurate reference simulation engine.

Drives any :class:`~repro.predictors.base.BranchPredictor` over a
:class:`~repro.trace.stream.Trace` one record at a time, exactly as the
paper's modified ``sim-bpred`` does: predict, compare, train.  This
engine is the semantic ground truth the vectorized engine is tested
against, and the only one that can run arbitrary predictors.
"""

from __future__ import annotations

import numpy as np

from ..predictors.base import BranchPredictor
from ..predictors.static import OraclePredictor
from ..trace.stream import Trace
from .results import SimulationResult

__all__ = ["simulate_reference"]


def simulate_reference(
    predictor: BranchPredictor,
    trace: Trace,
    *,
    reset: bool = True,
) -> SimulationResult:
    """Simulate ``predictor`` over ``trace`` and attribute misses per PC.

    Parameters
    ----------
    predictor:
        Any branch predictor.  :class:`OraclePredictor` is recognised
        and primed with each outcome before prediction.
    trace:
        The branch stream to simulate, in program order.
    reset:
        Reset the predictor first (default).  Pass ``False`` to continue
        warming an already-trained predictor across trace segments.
    """
    if reset:
        predictor.reset()

    # Encode PCs densely so per-branch accumulation is two bincounts
    # rather than a Python dict per record.
    unique_pcs, codes = np.unique(trace.pcs, return_inverse=True)
    miss_counts = np.zeros(len(unique_pcs), dtype=np.int64)

    pcs = trace.pcs
    outcomes = trace.outcomes
    is_oracle = isinstance(predictor, OraclePredictor)
    predict = predictor.predict
    update = predictor.update

    for i in range(len(pcs)):
        pc = int(pcs[i])
        taken = bool(outcomes[i])
        if is_oracle:
            predictor.prime(taken)
        if predict(pc) != taken:
            miss_counts[codes[i]] += 1
        update(pc, taken)

    executions = np.bincount(codes, minlength=len(unique_pcs)).astype(np.int64)
    return SimulationResult(
        unique_pcs,
        executions,
        miss_counts,
        predictor_name=predictor.name,
        trace_name=trace.name,
    )
