"""Analysis layer: the paper's experiments as reusable functions.

History sweeps with per-class miss attribution (Figures 3–14), the
§4.2 misclassification accounting, hard-branch distance distributions
(Figure 15), confidence estimation (§5.3), predication/dual-path
advisors (§5.2), and class-guided hybrid construction (§5.4).
"""

from .history_sweep import ClassMissGrid, SweepConfig, SweepResult, run_sweep
from .misclassification import (
    PAPER_GAS_TRANSITION_IDENTIFIED,
    PAPER_PAS_TRANSITION_IDENTIFIED,
    PAPER_TAKEN_IDENTIFIED,
    TAKEN_EASY_CLASSES,
    TRANSITION_EASY_CLASSES_GAS,
    TRANSITION_EASY_CLASSES_PAS,
    MisclassificationReport,
    misclassification_report,
)
from .distance import MAX_TRACKED_DISTANCE, DistanceDistribution, hard_branch_distances
from .confidence import (
    ClassConfidenceEstimator,
    ConfidenceEstimator,
    ConfidenceQuality,
    OneLevelEstimator,
    TwoLevelEstimator,
    evaluate_confidence,
)
from .advisors import (
    DualPathAssessment,
    PredicationCandidate,
    assess_dual_path,
    predication_candidates,
)
from .dualpath_sim import DualPathConfig, DualPathReport, simulate_dual_path
from .hybrid_design import (
    HybridPlan,
    design_hybrid,
    design_hybrid_spec,
    design_variable_history_hybrid,
    design_variable_history_hybrid_spec,
)

__all__ = [
    "SweepConfig",
    "SweepResult",
    "ClassMissGrid",
    "run_sweep",
    "MisclassificationReport",
    "misclassification_report",
    "PAPER_TAKEN_IDENTIFIED",
    "PAPER_GAS_TRANSITION_IDENTIFIED",
    "PAPER_PAS_TRANSITION_IDENTIFIED",
    "TAKEN_EASY_CLASSES",
    "TRANSITION_EASY_CLASSES_GAS",
    "TRANSITION_EASY_CLASSES_PAS",
    "DistanceDistribution",
    "hard_branch_distances",
    "MAX_TRACKED_DISTANCE",
    "ConfidenceEstimator",
    "ClassConfidenceEstimator",
    "OneLevelEstimator",
    "TwoLevelEstimator",
    "ConfidenceQuality",
    "evaluate_confidence",
    "PredicationCandidate",
    "predication_candidates",
    "DualPathAssessment",
    "assess_dual_path",
    "HybridPlan",
    "design_hybrid",
    "design_hybrid_spec",
    "design_variable_history_hybrid",
    "design_variable_history_hybrid_spec",
    "DualPathConfig",
    "DualPathReport",
    "simulate_dual_path",
]
