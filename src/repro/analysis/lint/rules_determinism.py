"""Determinism rules (``D1xx``): the bit-identical-everywhere invariant.

The chaos suite proves runs converge bit-identically across ``--jobs``
counts and processes; these rules keep new code from quietly breaking
that by reaching for ambient nondeterminism — hidden-global RNG
streams, wall clocks in key-producing code, filesystem enumeration
order, set iteration order.
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, register_rule
from .findings import Finding, Severity

__all__ = [
    "UnseededRandomRule",
    "WallClockInKeyCodeRule",
    "UnsortedDirListingRule",
    "UnsortedJsonRule",
    "SetIterationRule",
]

#: Modules where content keys, digests and persisted artifacts are
#: produced — the blast radius of a nondeterministic value here is a
#: silently wrong cache hit or a cross-process mismatch.
KEY_PRODUCING_SCOPE = (
    "pipeline/",
    "spec.py",
    "workload_spec.py",
    "faults.py",
    "trace/io.py",
)

#: numpy legacy global-state RNG entry points (``np.random.<fn>``).
#: Seeded or not, they share one hidden stream: two call sites racing
#: across workers draw order-dependent values.
_NP_LEGACY = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "seed",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "binomial",
        "poisson",
    }
)


def _receiver_chain(ctx: FileContext, call: ast.Call) -> str | None:
    return ctx.dotted_name(call.func)


@register_rule
class UnseededRandomRule(Rule):
    """Global-stream or unseeded RNG calls."""

    id = "D101"
    name = "unseeded-random"
    severity = Severity.ERROR
    description = (
        "stdlib `random.*` and numpy legacy `np.random.*` draw from hidden "
        "global streams, and `default_rng()` without a seed is "
        "run-dependent; every RNG must be an explicitly seeded Generator"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = _receiver_chain(ctx, node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            # stdlib: any module-level random.<fn>() shares the hidden
            # global Mersenne state; random.Random(seed) is fine.
            if parts[0] == "random" and len(parts) == 2 and parts[1] != "Random":
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"call to stdlib `{dotted}()` uses the hidden global "
                        "RNG stream; use a seeded `random.Random(seed)` or "
                        "`np.random.default_rng(seed)` instead",
                    )
                )
                continue
            # numpy legacy: np.random.<fn>() / numpy.random.<fn>().
            if (
                len(parts) >= 3
                and parts[-3] in ("np", "numpy")
                and parts[-2] == "random"
                and parts[-1] in _NP_LEGACY
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"call to numpy legacy `{dotted}()` uses the hidden "
                        "global RNG stream; use a seeded "
                        "`np.random.default_rng(seed)` Generator",
                    )
                )
                continue
            # default_rng() with no arguments seeds from the OS: every
            # run draws differently.
            if parts[-1] == "default_rng" and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "`default_rng()` without a seed draws OS entropy; pass "
                        "an explicit seed so runs are reproducible",
                    )
                )
        return findings


@register_rule
class WallClockInKeyCodeRule(Rule):
    """Wall-clock reads inside key/artifact-producing modules."""

    id = "D102"
    name = "wallclock-in-key-code"
    severity = Severity.ERROR
    description = (
        "`time.time`/`time.time_ns`/`datetime.now`/`utcnow`/`date.today` in "
        "key- or artifact-producing modules make content keys and stored "
        "artifacts run-dependent (timing code should use `time.monotonic`; "
        "genuine timestamps need a justified suppression)"
    )
    scope = KEY_PRODUCING_SCOPE

    _BANNED = frozenset(
        {
            ("time", "time"),
            ("time", "time_ns"),
            ("datetime", "now"),
            ("datetime", "utcnow"),
            ("date", "today"),
        }
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = _receiver_chain(ctx, node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) >= 2 and (parts[-2], parts[-1]) in self._BANNED:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"wall-clock call `{dotted}()` in key/artifact code: "
                        "the value differs across runs and processes; use "
                        "`time.monotonic()` for durations, or suppress with "
                        "justification if this is a genuine metadata timestamp",
                    )
                )
        return findings


#: Call wrappers that make enumeration order irrelevant: sorting fixes
#: it, and pure cardinality/membership aggregations cannot observe it.
_ORDER_NEUTRALIZERS = frozenset({"sorted", "len", "set", "frozenset"})

_DIR_ENUMERATORS = frozenset({"glob", "rglob", "iterdir", "listdir", "scandir"})


@register_rule
class UnsortedDirListingRule(Rule):
    """Directory enumeration consumed without ``sorted()``."""

    id = "D103"
    name = "unsorted-dir-listing"
    severity = Severity.ERROR
    description = (
        "`os.listdir`/`os.scandir`/`Path.glob`/`rglob`/`iterdir` return "
        "entries in filesystem order, which differs across machines and "
        "runs; wrap the call in `sorted(...)` (or an order-insensitive "
        "aggregate like `len`/`set`) before consuming it"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute) and func.attr in _DIR_ENUMERATORS:
                name = func.attr
            elif isinstance(func, ast.Name) and func.id in ("listdir", "scandir"):
                name = func.id
            if name is None:
                continue
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_NEUTRALIZERS
            ):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"`{name}()` enumerates the filesystem in arbitrary "
                    "order; wrap it in `sorted(...)` before iterating so "
                    "results do not depend on the machine",
                )
            )
        return findings


@register_rule
class UnsortedJsonRule(Rule):
    """``json.dumps`` without ``sort_keys=True`` in pipeline code."""

    id = "D104"
    name = "unsorted-json-serialization"
    severity = Severity.WARNING
    scope = ("pipeline/", "faults.py")
    description = (
        "`json.dumps` without `sort_keys=True` in pipeline code serializes "
        "in dict insertion order; anything persisted, hashed or compared "
        "must canonicalize key order"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if _receiver_chain(ctx, node) != "json.dumps":
                continue
            sort_keys = None
            has_star_kwargs = False
            for keyword in node.keywords:
                if keyword.arg is None:
                    has_star_kwargs = True
                elif keyword.arg == "sort_keys":
                    sort_keys = keyword.value
            if has_star_kwargs:
                continue  # caller-provided kwargs: cannot decide statically
            if (
                isinstance(sort_keys, ast.Constant)
                and sort_keys.value is True
            ):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "`json.dumps` without `sort_keys=True` in pipeline code: "
                    "serialized key order follows dict construction order, "
                    "not content",
                )
            )
        return findings


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register_rule
class SetIterationRule(Rule):
    """Iteration over set expressions without ``sorted()``."""

    id = "D105"
    name = "set-iteration"
    severity = Severity.ERROR
    description = (
        "iterating a set literal, set comprehension or `set()`/`frozenset()` "
        "call feeds hash-randomized order into whatever consumes it "
        "(content keys, reports, joined strings); wrap in `sorted(...)`"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        message = (
            "set iteration order is hash-randomized across processes "
            "(PYTHONHASHSEED); wrap the set in `sorted(...)` before "
            "iterating or joining"
        )
        for node in ctx.walk():
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expression(
                node.iter
            ):
                findings.append(self.finding(ctx, node.iter, message))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        findings.append(self.finding(ctx, generator.iter, message))
            elif isinstance(node, ast.Call):
                # tuple(<set>), list(<set>), "sep".join(<set>): an ordered
                # container built straight from unordered input.
                func = node.func
                orders = (
                    isinstance(func, ast.Name) and func.id in ("tuple", "list")
                ) or (isinstance(func, ast.Attribute) and func.attr == "join")
                if orders and node.args and _is_set_expression(node.args[0]):
                    findings.append(self.finding(ctx, node.args[0], message))
        return findings
