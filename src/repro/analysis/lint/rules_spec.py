"""Spec-contract rules (``S2xx``): the declarative-layer guarantees.

PRs 2 and 4 established the contract every ``*Spec`` dataclass must
honor: frozen (specs are hashable identities — cache keys, session
dedupe keys, content keys), registered in its kind registry (JSON
round-trips dispatch through it), and fully serialized (an overriding
``to_dict`` that drops a field silently loses state across a
round-trip, which is exactly the class of bug a content key cannot
catch — equal keys would describe unequal specs).
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, register_rule
from .findings import Finding, Severity

__all__ = ["SpecFrozenRule", "SpecRegisteredRule", "SpecToDictCompleteRule"]


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclasses.dataclass(...)`` decorator, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _is_spec_class(node: ast.ClassDef) -> bool:
    return node.name.endswith("Spec")


def _declared_fields(node: ast.ClassDef) -> list[str]:
    """Dataclass field names: annotated class-level names, minus ClassVars."""
    fields: list[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(statement.target.id)
    return fields


def _kind_value(node: ast.ClassDef) -> str | None:
    """The ``kind: ClassVar[str] = "..."`` literal, if declared."""
    for statement in node.body:
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "kind"
            and statement.value is not None
            and isinstance(statement.value, ast.Constant)
            and isinstance(statement.value.value, str)
        ):
            return statement.value.value
    return None


@register_rule
class SpecFrozenRule(Rule):
    """Every ``*Spec`` dataclass must be ``frozen=True``."""

    id = "S201"
    name = "spec-not-frozen"
    severity = Severity.ERROR
    description = (
        "a `*Spec` dataclass without `frozen=True` is mutable: its hash can "
        "rot inside session dedupe maps and cache keys; specs are identities "
        "and must be immutable"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef) or not _is_spec_class(node):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue  # not a dataclass: the contract targets dataclass specs
            frozen = False
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        frozen = True
            if not frozen:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"spec dataclass `{node.name}` is not `frozen=True`; "
                        "specs are hashable identities and must be immutable",
                    )
                )
        return findings


@register_rule
class SpecRegisteredRule(Rule):
    """Concrete spec kinds must enter their registry."""

    id = "S202"
    name = "spec-unregistered"
    severity = Severity.ERROR
    scope = ("spec.py", "workload_spec.py")
    description = (
        "a concrete `*Spec` dataclass declaring a `kind` must carry its "
        "registry decorator (`@_register`/`@_register_model`/...); an "
        "unregistered kind serializes fine but `from_dict` cannot ever "
        "round-trip it back"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef) or not _is_spec_class(node):
                continue
            if _dataclass_decorator(node) is None or _kind_value(node) is None:
                continue
            registered = False
            for decorator in node.decorator_list:
                target = (
                    decorator.func if isinstance(decorator, ast.Call) else decorator
                )
                name = None
                if isinstance(target, ast.Name):
                    name = target.id
                elif isinstance(target, ast.Attribute):
                    name = target.attr
                if name is not None and (
                    name.startswith("_register") or name.startswith("register")
                ):
                    registered = True
            if not registered:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"spec dataclass `{node.name}` declares kind "
                        f"{_kind_value(node)!r} but no registry decorator; "
                        "`from_dict`/JSON round-trips cannot reach it",
                    )
                )
        return findings


@register_rule
class SpecToDictCompleteRule(Rule):
    """An overriding ``to_dict`` must serialize every declared field."""

    id = "S203"
    name = "spec-to-dict-incomplete"
    severity = Severity.ERROR
    description = (
        "a `*Spec`/spec-layer dataclass overriding `to_dict` must reference "
        "every declared field (or iterate `dataclasses.fields`); a dropped "
        "field silently loses state across serialize/deserialize round-trips"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            if _dataclass_decorator(node) is None:
                continue
            to_dict = None
            for statement in node.body:
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == "to_dict"
                ):
                    to_dict = statement
            if to_dict is None:
                continue
            fields = _declared_fields(node)
            if not fields:
                continue
            body_source = ast.unparse(to_dict)
            if "fields(" in body_source:
                continue  # generic field iteration covers everything
            referenced: set[str] = set()
            for inner in ast.walk(to_dict):
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    referenced.add(inner.attr)
                elif isinstance(inner, ast.Constant) and isinstance(inner.value, str):
                    referenced.add(inner.value)
            missing = [name for name in fields if name not in referenced]
            if missing:
                findings.append(
                    self.finding(
                        ctx,
                        to_dict,
                        f"`{node.name}.to_dict` never references declared "
                        f"field(s) {', '.join(repr(m) for m in missing)}; a "
                        "round-trip through it silently drops that state",
                    )
                )
        return findings
