"""Worker-safety rules (``W3xx``): code shipped across process pools.

The executor fans plan nodes out over a ``ProcessPoolExecutor``;
anything submitted must survive pickling into a worker and must not
communicate back through module globals (each worker has its own copy
— mutations are silently invisible to the main process and to other
workers).
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, register_rule
from .findings import Finding, Severity

__all__ = ["NonPortableSubmitRule", "WorkerGlobalMutationRule"]


@register_rule
class NonPortableSubmitRule(Rule):
    """Lambdas/nested functions handed to an executor pool."""

    id = "W301"
    name = "nonportable-submit"
    severity = Severity.ERROR
    description = (
        "callables submitted to a process pool must be module-level: "
        "lambdas and closures do not pickle, failing only at runtime "
        "(and only on the `--jobs > 1` path)"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        # Names of functions defined *inside* another function: these
        # close over their frame and cannot cross a process boundary.
        nested_names: set[str] = set()
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ctx.enclosing_functions(node):
                    nested_names.add(node.name)

        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
                continue
            for arg in node.args:
                target = arg
                # functools.partial(f, ...) ships f itself: check inside.
                if (
                    isinstance(arg, ast.Call)
                    and (name := ctx.dotted_name(arg.func)) is not None
                    and name.split(".")[-1] == "partial"
                    and arg.args
                ):
                    target = arg.args[0]
                if isinstance(target, ast.Lambda):
                    findings.append(
                        self.finding(
                            ctx,
                            target,
                            "lambda submitted to an executor pool: lambdas do "
                            "not pickle across process boundaries; hoist it to "
                            "a module-level function",
                        )
                    )
                elif (
                    isinstance(target, ast.Name) and target.id in nested_names
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            target,
                            f"nested function `{target.id}` submitted to an "
                            "executor pool: closures do not pickle across "
                            "process boundaries; hoist it to module level",
                        )
                    )
        return findings


@register_rule
class WorkerGlobalMutationRule(Rule):
    """``global`` mutation in modules whose functions run in workers."""

    id = "W302"
    name = "worker-global-mutation"
    severity = Severity.WARNING
    scope = ("pipeline/", "engine/", "faults.py")
    description = (
        "a `global` statement in worker-executed modules mutates per-process "
        "module state: the write is invisible to the main process and to "
        "sibling workers; thread state through arguments/returns, or "
        "suppress with justification for deliberate per-process caches"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if isinstance(node, ast.Global):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"`global {', '.join(node.names)}` inside a function "
                        "in worker-executed code: each worker process mutates "
                        "its own copy; the main process never sees the write",
                    )
                )
        return findings
