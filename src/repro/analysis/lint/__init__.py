"""``repro lint``: self-hosted static analysis for repro's invariants.

The test suite can only *sample* the properties this reproduction is
built on — bit-identical results across ``--jobs`` counts and
processes, content keys that change iff content changes, nodes that
survive a trip through a process pool.  This package checks the source
itself, compiler-style: an AST rule battery encoding the invariants,
inline ``# repro: noqa[RULE]`` suppressions for justified exceptions,
and a committed baseline for grandfathered findings, wired into a CLI
subcommand (``repro lint``) and a CI gate that fails on anything new.

Rule categories (full catalogue in ``docs/ANALYSIS.md``):

* ``D1xx`` determinism — unseeded/global RNG streams, wall clocks in
  key-producing code, unsorted directory enumeration, unsorted JSON,
  set-iteration order.
* ``S2xx`` spec contracts — ``*Spec`` dataclasses frozen, registered,
  and fully serialized by any overriding ``to_dict``.
* ``W3xx`` worker safety — only module-level callables cross the
  process pool; no ``global`` mutation in worker-executed modules; no
  blocking calls inside the service layer's coroutines.
* ``P4xx`` store discipline — manifest/report writes stay inside the
  store's cross-process ``FileLock``.

Typical use::

    from repro.analysis.lint import lint_paths, all_rules
    findings = lint_paths(["src/repro"])   # [] when clean

Importing this package registers the built-in battery; the rule
modules are imported for that side effect below.
"""

from .baseline import (
    DEFAULT_BASELINE_NAME,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from .core import (
    FileContext,
    Rule,
    all_rules,
    collect_files,
    lint_file,
    lint_paths,
    register_rule,
    rule_by_id,
    rule_ids,
)
from .findings import Finding, Severity

# Built-in rule battery: importing registers every rule.
from . import rules_determinism  # noqa: F401
from . import rules_service  # noqa: F401
from . import rules_spec  # noqa: F401
from . import rules_store  # noqa: F401
from . import rules_worker  # noqa: F401

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "FileContext",
    "register_rule",
    "rule_ids",
    "rule_by_id",
    "all_rules",
    "collect_files",
    "lint_file",
    "lint_paths",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "filter_baselined",
]
