"""Store-discipline rules (``P4xx``): shared-cache mutation protocol.

Concurrent runs share one cache directory; the manifest and the run
report are read-merge-write JSON files whose merges must serialize
under the store's cross-process
:class:`~repro.pipeline.locking.FileLock`.  An unlocked write works in
every single-process test and silently drops records the first time
two runs race — exactly the bug class static analysis exists for.
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, register_rule
from .findings import Finding, Severity

__all__ = ["UnlockedManifestWriteRule"]


#: Direct-call names that rewrite a shared JSON ledger on disk.
_PROTECTED_CALLS = frozenset({"_write_manifest"})


def _is_lock_context(item: ast.withitem) -> bool:
    """Whether one ``with`` item acquires a store/file lock.

    Matches ``with <anything>.lock:``, ``with <anything>.lock():``,
    ``with lock:`` and ``with FileLock(...):`` — the spellings the
    store and executor use.
    """
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        target = expr.func
        if isinstance(target, ast.Name) and target.id == "FileLock":
            return True
        expr = target
    if isinstance(expr, ast.Attribute) and expr.attr == "lock":
        return True
    if isinstance(expr, ast.Name) and expr.id == "lock":
        return True
    return False


@register_rule
class UnlockedManifestWriteRule(Rule):
    """Manifest/report writes outside a ``FileLock`` context."""

    id = "P401"
    name = "unlocked-manifest-write"
    severity = Severity.ERROR
    scope = ("pipeline/",)
    description = (
        "manifest rewrites (`_write_manifest`) and run-report saves "
        "(`<report>.save(...)`) in pipeline code must run inside a "
        "`with <store>.lock:` block; unlocked read-merge-writes drop "
        "records when two runs share a cache directory"
    )

    def _is_protected_write(self, ctx: FileContext, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _PROTECTED_CALLS:
            return func.id
        if isinstance(func, ast.Attribute):
            if func.attr in _PROTECTED_CALLS:
                return func.attr
            # <something named *report*>.save(...): the run-report
            # checkpoint (RunReport.save rewrites a shared JSON file).
            if func.attr == "save":
                receiver = ctx.dotted_name(func.value)
                if receiver is not None and "report" in receiver.lower():
                    return f"{receiver}.save"
        return None

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = self._is_protected_write(ctx, node)
            if name is None:
                continue
            locked = any(
                _is_lock_context(item)
                for with_node in ctx.enclosing_withs(node)
                for item in with_node.items
            )
            if locked:
                continue
            # The method that *defines* the locked critical section is
            # allowed to call the raw writer if the lock wraps it; an
            # unlocked call anywhere else is the finding.
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"`{name}(...)` outside a `with <store>.lock:` block: "
                    "concurrent runs sharing this cache can interleave the "
                    "read-merge-write and drop each other's records",
                )
            )
        return findings
