"""Service-layer rules (``W3xx`` continued): async front-end hygiene.

The analysis service's HTTP front end (:mod:`repro.service.server`)
runs on a single asyncio event loop; one blocking call inside a
coroutine stalls *every* connection — submissions, status polls and
progress streams alike — for its duration.  The scheduler exists
precisely so blocking work (planning, execution, store I/O) runs on
threads and worker processes; coroutines must only await.
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, register_rule
from .findings import Finding, Severity

__all__ = ["AsyncBlockingCallRule"]

#: ``module.function`` calls that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() stalls the event loop; use asyncio.sleep()",
    "subprocess.run": "subprocess.run() blocks until the child exits",
    "subprocess.call": "subprocess.call() blocks until the child exits",
    "subprocess.check_call": "subprocess.check_call() blocks until the child exits",
    "subprocess.check_output": "subprocess.check_output() blocks until the child exits",
}

#: Method names that are synchronous file I/O wherever they appear.
_BLOCKING_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}


@register_rule
class AsyncBlockingCallRule(Rule):
    """Blocking calls inside ``async def`` bodies in the service layer."""

    id = "W303"
    name = "async-blocking-call"
    severity = Severity.ERROR
    scope = ("service/",)
    description = (
        "a blocking call (`time.sleep`, sync file I/O, `subprocess.run`) "
        "inside an `async def` stalls the whole event loop — every "
        "connection, not just this one; await asyncio.sleep(), or push "
        "the work to a thread with asyncio.to_thread()"
    )

    def _nearest_function(
        self, ctx: FileContext, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        enclosing = ctx.enclosing_functions(node)  # innermost first
        return enclosing[0] if enclosing else None

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            # Only calls whose *nearest* enclosing function is a
            # coroutine: a sync helper nested in an async def runs on
            # whatever thread calls it, which the async caller should
            # arrange via to_thread — flagging its body would punish
            # exactly that fix.
            owner = self._nearest_function(ctx, node)
            if not isinstance(owner, ast.AsyncFunctionDef):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in _BLOCKING_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"`{dotted}()` in coroutine `{owner.name}`: "
                        f"{_BLOCKING_CALLS[dotted]}; use asyncio.to_thread() "
                        "or an async equivalent",
                    )
                )
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"sync `open()` in coroutine `{owner.name}` blocks "
                        "the event loop on disk; wrap the file work in "
                        "asyncio.to_thread()",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_METHODS
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"sync file I/O `.{func.attr}()` in coroutine "
                        f"`{owner.name}` blocks the event loop on disk; "
                        "wrap it in asyncio.to_thread()",
                    )
                )
        return findings
