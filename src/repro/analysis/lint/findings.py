"""The :class:`Finding` model: one rule violation at one source location.

Findings are plain frozen data — rule id, severity, file, line, column,
message — ordered by location so reports are stable, and serializable
to JSON both for ``repro lint --format json`` and for the committed
baseline file (which deliberately drops line/column: a baseline entry
must survive unrelated edits shifting code up and down a file, so it
keys on ``(rule, path, message)`` only — see
:mod:`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Mapping

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How bad a finding is.

    Both severities gate CI identically (any non-baselined finding
    fails); the split exists so reports communicate *invariant broken*
    (``ERROR``: determinism, spec contracts, worker safety) versus
    *hazard pattern* (``WARNING``: code that is correct today but one
    refactor away from breaking an invariant).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Finding:
    """One violation: ``rule`` at ``path:line:col`` with a ``message``.

    ``path`` is stored POSIX-relative to the lint root (the directory
    or file the analyzer was pointed at), so the same finding has the
    same identity no matter which machine or checkout produced it.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The one-line text-report form."""
        return f"{self.location()}: {self.rule} [{self.severity.value}] {self.message}"

    # -- identity for baseline matching ---------------------------------

    def identity(self) -> tuple[str, str, str]:
        """The location-free identity used by the baseline: a finding
        that merely moved to another line still matches its entry."""
        return (self.rule, self.path, self.message)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            severity=Severity(data.get("severity", "error")),
            path=str(data["path"]),
            line=int(data.get("line", 0)),
            col=int(data.get("col", 0)),
            message=str(data.get("message", "")),
        )
