"""The analyzer core: rule registry, per-file AST context, the driver.

The framework is deliberately the same shape as the rest of the
codebase's registries (:mod:`repro.spec`, :mod:`repro.workload_spec`):
a :class:`Rule` subclass declares a unique id and registers itself with
:func:`register_rule`; the driver parses each file once into a
:class:`FileContext` (AST + parent links + suppression map + relative
path) and hands it to every rule whose :meth:`Rule.applies_to` scope
matches.  Rules return :class:`~repro.analysis.lint.findings.Finding`
lists; the driver drops suppressed ones and sorts the rest by
location.

Suppressions are inline comments on the *flagged line*::

    now = time.time()  # repro: noqa[D102] -- litter age needs wall clock

``# repro: noqa`` (no bracket) suppresses every rule on the line; the
bracketed form takes a comma-separated rule-id list.  Anything after
the closing bracket is free-text justification (encouraged).

Determinism of the analyzer itself is held to the standard it
enforces: files are collected in sorted order, rules run in registry
(id) order, findings sort by location — the same tree produces the
same report byte for byte, everywhere.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from pathlib import Path

from ...errors import ConfigurationError
from .findings import Finding, Severity

__all__ = [
    "Rule",
    "FileContext",
    "register_rule",
    "rule_ids",
    "rule_by_id",
    "all_rules",
    "collect_files",
    "lint_file",
    "lint_paths",
]

_RULES: dict[str, "Rule"] = {}

#: ``# repro: noqa`` or ``# repro: noqa[D101,W301] optional justification``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9,\s]+)\])?")


def register_rule(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator: instantiate ``cls`` into the id-keyed registry."""
    rule = cls()
    if not rule.id or rule.id in _RULES:
        raise ConfigurationError(f"duplicate or empty lint rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return cls


def rule_ids() -> list[str]:
    """Registered rule ids, sorted (the execution order)."""
    return sorted(_RULES)


def rule_by_id(rule_id: str) -> "Rule":
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r}; known: {', '.join(rule_ids())}"
        ) from None


def all_rules() -> list["Rule"]:
    return [_RULES[rule_id] for rule_id in rule_ids()]


class FileContext:
    """Everything a rule needs about one parsed source file."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._noqa: dict[int, frozenset[str] | None] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            if match.group(1) is None:
                self._noqa[lineno] = None  # blanket: every rule
            else:
                ids = frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
                self._noqa[lineno] = ids

    # -- tree helpers ----------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def walk(self) -> Iterable[ast.AST]:
        return ast.walk(self.tree)

    def dotted_name(self, node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, else ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def enclosing_functions(self, node: ast.AST) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Function definitions lexically containing ``node``, innermost first."""
        chain: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                chain.append(current)
            current = self.parent(current)
        return chain

    def enclosing_withs(self, node: ast.AST) -> list[ast.With | ast.AsyncWith]:
        """``with`` blocks lexically containing ``node``, innermost first."""
        chain: list[ast.With | ast.AsyncWith] = []
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                chain.append(current)
            current = self.parent(current)
        return chain

    # -- suppressions ----------------------------------------------------

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        if lineno not in self._noqa:
            return False
        ids = self._noqa[lineno]
        return ids is None or rule_id in ids


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`id` (``<category letter><number>``, e.g.
    ``D101``), :attr:`name` (short kebab-case), :attr:`severity`,
    :attr:`description` (one sentence for ``--list-rules`` and the
    docs), optionally :attr:`scope` (path patterns; empty = every
    file), and implement :meth:`check`.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Path patterns this rule is restricted to.  A pattern ending in
    #: ``/`` matches any file under a directory of that name; any other
    #: pattern matches files whose relative path ends with it.  Empty
    #: means the rule applies everywhere.
    scope: tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        if not self.scope:
            return True
        probe = "/" + rel_path
        for pattern in self.scope:
            if pattern.endswith("/"):
                if "/" + pattern in probe + "/":
                    return True
            elif probe.endswith("/" + pattern):
                return True
        return False

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for ``node`` under this rule."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# -- driver -------------------------------------------------------------------


def collect_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """``(file, relative posix path)`` pairs for every ``.py`` under
    ``paths``, sorted — directory enumeration feeding a report obeys the
    rules this module enforces on everyone else.

    Relative paths are against the argument that contained the file
    (a directory argument strips its own prefix; a file argument keeps
    its name only), so scoped rules see ``pipeline/store.py`` whether
    the analyzer was pointed at ``src/repro`` or at a fixture tree.
    """
    collected: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise ConfigurationError(f"lint path {str(raw)!r} does not exist")
        if root.is_file():
            files = [root]
            base = root.parent
        else:
            files = sorted(root.rglob("*.py"))
            base = root
        for file in files:
            resolved = file.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            collected.append((file, file.relative_to(base).as_posix()))
    collected.sort(key=lambda pair: pair[1])
    return collected


def lint_file(
    path: str | Path,
    rel_path: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Run ``rules`` (default: all registered) over one file."""
    path = Path(path)
    rel = rel_path if rel_path is not None else path.name
    try:
        source = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from None
    try:
        ctx = FileContext(path, rel, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="E000",
                severity=Severity.ERROR,
                path=rel,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(rel):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Run the rule battery over every ``.py`` file under ``paths``."""
    findings: list[Finding] = []
    for path, rel in collect_files(paths):
        findings.extend(lint_file(path, rel, rules))
    findings.sort(key=Finding.sort_key)
    return findings
