"""Baseline files: grandfathering known findings without hiding new ones.

A baseline is a committed JSON file listing findings the team has seen
and explicitly decided to tolerate for now (with the *why* recorded in
the entry).  ``repro lint`` subtracts baselined findings from its
report and fails only on what is new; ``repro lint --write-baseline``
regenerates the file from the current findings.

Entries deliberately carry no line numbers — a baselined finding that
merely moves (unrelated edits above it) still matches; one whose
message changes (the violation itself changed) resurfaces.  Matching
is multiset-style: a baseline entry with ``count: 2`` absorbs at most
two identical findings, so *adding* a third occurrence of a
grandfathered pattern still fails the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

from ...errors import ConfigurationError
from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "filter_baselined",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_Identity = tuple[str, str, str]


def load_baseline(path: str | Path) -> Counter:
    """The baseline as a ``Counter`` of finding identities.

    A missing file is an empty baseline; a corrupt or wrong-version
    file is an error (a silently ignored baseline would hide that the
    gate stopped gating).
    """
    path = Path(path)
    if not path.exists():
        return Counter()
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"corrupt lint baseline {path}: {exc}") from None
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"lint baseline {path} has unsupported version "
            f"{data.get('version') if isinstance(data, dict) else '?'!r} "
            f"(expected {BASELINE_VERSION})"
        )
    counter: Counter = Counter()
    for entry in data.get("entries", []):
        if not isinstance(entry, dict):
            raise ConfigurationError(f"malformed lint baseline entry in {path}")
        identity: _Identity = (
            str(entry.get("rule", "")),
            str(entry.get("path", "")),
            str(entry.get("message", "")),
        )
        counter[identity] += int(entry.get("count", 1))
    return counter


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Persist ``findings`` as the new baseline (sorted, counted)."""
    counter: Counter = Counter(finding.identity() for finding in findings)
    entries: list[dict[str, Any]] = []
    for (rule, rel_path, message), count in sorted(counter.items()):
        entry: dict[str, Any] = {"rule": rule, "path": rel_path, "message": message}
        if count > 1:
            entry["count"] = count
        entries.append(entry)
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def filter_baselined(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], int]:
    """``(new_findings, absorbed_count)`` after subtracting the baseline.

    Findings are consumed against the baseline in report order; each
    entry absorbs at most its ``count`` occurrences.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    absorbed = 0
    for finding in findings:
        identity = finding.identity()
        if remaining[identity] > 0:
            remaining[identity] -= 1
            absorbed += 1
        else:
            new.append(finding)
    return new, absorbed
