"""Dual-path execution cost model (paper §5.2.1, quantified).

The paper argues dual-path execution should be reserved for the
branches the joint classification flags as hard, and that Figure 15's
distance distribution decides whether that is affordable.  This module
closes the loop with a simple machine model: drive a predictor and a
confidence estimator over a trace, fork on low-confidence branches
when a path slot is free, and account for pipeline cycles.

Model (deliberately minimal, matching the paper's framing):

* a correctly predicted branch costs 1 cycle;
* a mispredicted branch costs ``1 + penalty`` cycles;
* a *forked* branch always costs ``1 + fork_overhead`` cycles —
  both paths execute, so there is no misprediction penalty;
* at most ``max_paths`` forks may be live at once; a fork stays live
  for ``resolve_distance`` subsequent branches (the depth the second
  path must be carried before the branch resolves).

Comparing total cycles with and without forking reproduces the
paper's qualitative conclusion: class-targeted dual path pays off
when hard branches are rare and well separated, and collapses when
they arrive back to back (ijpeg).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..predictors.base import BranchPredictor
from ..spec import PredictorSpec, build_predictor
from ..trace.stream import Trace
from .confidence import ConfidenceEstimator

__all__ = ["DualPathConfig", "DualPathReport", "simulate_dual_path"]


@dataclass(frozen=True, slots=True)
class DualPathConfig:
    """Machine parameters for the dual-path cost model."""

    misprediction_penalty: int = 8
    fork_overhead: int = 2
    max_paths: int = 2
    resolve_distance: int = 4

    def __post_init__(self) -> None:
        if self.misprediction_penalty < 1:
            raise ConfigurationError("misprediction_penalty must be >= 1")
        if self.fork_overhead < 0:
            raise ConfigurationError("fork_overhead must be >= 0")
        if self.max_paths < 1:
            raise ConfigurationError("max_paths must be >= 1")
        if self.resolve_distance < 1:
            raise ConfigurationError("resolve_distance must be >= 1")


@dataclass(frozen=True, slots=True)
class DualPathReport:
    """Cycle accounting for one dual-path simulation."""

    total_branches: int
    mispredictions: int
    forks: int
    forks_denied: int  # low-confidence branches with no free path slot
    covered_mispredictions: int  # mispredictions hidden by a fork
    cycles_with_forking: int
    cycles_without_forking: int

    @property
    def speedup(self) -> float:
        """Branch-cycle speedup of forking vs never forking."""
        if self.cycles_with_forking == 0:
            return 1.0
        return self.cycles_without_forking / self.cycles_with_forking

    @property
    def denial_rate(self) -> float:
        """Fraction of fork requests rejected for lack of path slots —
        the congestion Figure 15 predicts for ijpeg."""
        requested = self.forks + self.forks_denied
        return self.forks_denied / requested if requested else 0.0


def simulate_dual_path(
    predictor: BranchPredictor | PredictorSpec,
    estimator: ConfidenceEstimator,
    trace: Trace,
    config: DualPathConfig | None = None,
) -> DualPathReport:
    """Run the dual-path cost model over a trace.

    The same predictor drives both the forking and non-forking cycle
    accounts in a single pass, so the comparison is exact rather than a
    two-run approximation.  ``predictor`` may be a stateful predictor
    or a declarative :class:`~repro.spec.PredictorSpec`.
    """
    config = config or DualPathConfig()
    predictor = build_predictor(predictor)
    predictor.reset()
    estimator.reset()

    live_paths: list[int] = []  # remaining resolve distances
    mispredictions = 0
    forks = 0
    forks_denied = 0
    covered = 0
    cycles_fork = 0
    cycles_plain = 0

    pcs = trace.pcs
    outcomes = trace.outcomes
    for i in range(len(pcs)):
        pc = int(pcs[i])
        taken = bool(outcomes[i])

        # Age out resolved paths before considering a new fork.
        live_paths = [d - 1 for d in live_paths if d > 1]

        confident = estimator.high_confidence(pc)
        forked = False
        if not confident:
            if len(live_paths) < config.max_paths - 1:
                live_paths.append(config.resolve_distance)
                forks += 1
                forked = True
            else:
                forks_denied += 1

        correct = predictor.access(pc, taken)
        estimator.update(pc, correct)

        if not correct:
            mispredictions += 1
        cycles_plain += 1 if correct else 1 + config.misprediction_penalty
        if forked:
            cycles_fork += 1 + config.fork_overhead
            if not correct:
                covered += 1
        else:
            cycles_fork += 1 if correct else 1 + config.misprediction_penalty

    return DualPathReport(
        total_branches=len(pcs),
        mispredictions=mispredictions,
        forks=forks,
        forks_denied=forks_denied,
        covered_mispredictions=covered,
        cycles_with_forking=cycles_fork,
        cycles_without_forking=cycles_plain,
    )
