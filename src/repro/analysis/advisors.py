"""Predication and dual-path advisors (paper §5.2).

The paper argues the joint classification directly identifies which
branches deserve non-predictive treatment:

* **Predication** (§5.2.2) — profitable for hard (near-5/5) branches,
  where eliminating the branch removes ~50 %-miss-rate mispredictions
  at the cost of executing both guarded paths; *harmful* for easy
  branches (e.g. the 1/1 class), where it only lengthens execution.
* **Dual-path execution** (§5.2.1) — feasible when flagged branches
  rarely occur within a few dynamic branches of each other (Figure 15),
  since simultaneous dual paths multiply hardware cost.

The expected-miss-rate input comes from a history sweep — now planned
and batched by :class:`repro.session.Session` (see ``docs/API.md``) —
and :func:`predication_candidates` accepts the sweep's
:class:`~repro.analysis.history_sweep.ClassMissGrid` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..classify.profile import ProfileTable
from ..errors import ConfigurationError
from ..trace.stream import Trace
from .distance import DistanceDistribution, hard_branch_distances

__all__ = [
    "PredicationCandidate",
    "predication_candidates",
    "DualPathAssessment",
    "assess_dual_path",
]


@dataclass(frozen=True, slots=True)
class PredicationCandidate:
    """One branch's predication cost/benefit estimate.

    ``benefit`` approximates mispredictions removed per 1000 dynamic
    branches of the whole program; ``cost`` approximates extra
    instructions introduced (both paths always execute) on the same
    scale, assuming ``path_length`` instructions per guarded path.
    """

    pc: int
    taken_class: int
    transition_class: int
    executions: int
    expected_miss_rate: float
    benefit: float
    cost: float

    @property
    def profitable(self) -> bool:
        """True when removed mispredictions outweigh inserted work
        (using the conventional ~1 misprediction ≈ path_length ratio
        folded into the benefit/cost scaling)."""
        return self.benefit > self.cost


def predication_candidates(
    profile: ProfileTable,
    joint_miss_rates: np.ndarray,
    *,
    miss_threshold: float = 0.3,
    path_length: int = 4,
    misprediction_penalty: int = 8,
) -> list[PredicationCandidate]:
    """Rank branches by predication profitability (best first).

    Parameters
    ----------
    profile:
        Joint classification of the program's branches.
    joint_miss_rates:
        (11, 11) expected miss rate per joint class (rows = transition),
        or a :class:`~repro.analysis.history_sweep.ClassMissGrid` whose
        :meth:`~repro.analysis.history_sweep.ClassMissGrid.joint_miss_at_optimal`
        matrix is used.
    miss_threshold:
        Only classes at or above this expected miss rate are considered
        (the paper's "near 50 % taken and transition rates" region).
    path_length:
        Instructions per predicated path (cost of predication).
    misprediction_penalty:
        Pipeline cycles saved per removed misprediction (benefit).
    """
    if hasattr(joint_miss_rates, "joint_miss_at_optimal"):
        joint_miss_rates = joint_miss_rates.joint_miss_at_optimal()
    rates = np.asarray(joint_miss_rates, dtype=np.float64)
    if rates.shape != (11, 11):
        raise ConfigurationError("joint_miss_rates must be 11x11")
    total = max(profile.total_dynamic, 1)

    candidates = []
    for pc in profile:
        branch = profile[pc]
        expected = float(rates[branch.transition_class, branch.taken_class])
        if expected < miss_threshold:
            continue
        per_kilo = branch.executions / total * 1000
        benefit = per_kilo * expected * misprediction_penalty
        cost = per_kilo * path_length
        candidates.append(
            PredicationCandidate(
                pc=pc,
                taken_class=branch.taken_class,
                transition_class=branch.transition_class,
                executions=branch.executions,
                expected_miss_rate=expected,
                benefit=benefit,
                cost=cost,
            )
        )
    candidates.sort(key=lambda c: c.benefit - c.cost, reverse=True)
    return candidates


@dataclass(frozen=True, slots=True)
class DualPathAssessment:
    """Feasibility verdict for dual-path execution on one benchmark."""

    benchmark: str
    distances: DistanceDistribution
    hard_dynamic_fraction: float

    @property
    def feasible(self) -> bool:
        """Feasible when hard branches are rare and well separated."""
        return self.distances.dual_path_friendly and self.hard_dynamic_fraction < 0.10


def assess_dual_path(trace: Trace, *, profile: ProfileTable | None = None) -> DualPathAssessment:
    """Assess dual-path feasibility for one benchmark trace."""
    if profile is None:
        profile = ProfileTable.from_trace(trace)
    distances = hard_branch_distances(trace, profile=profile)
    hard = profile.hard_pcs()
    if len(hard) and profile.total_dynamic:
        mask = np.isin(profile.pcs, hard)
        hard_fraction = float(profile.executions[mask].sum() / profile.total_dynamic)
    else:
        hard_fraction = 0.0
    return DualPathAssessment(
        benchmark=distances.benchmark,
        distances=distances,
        hard_dynamic_fraction=hard_fraction,
    )
