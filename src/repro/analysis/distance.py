"""Hard-branch spacing analysis (the paper's Figure 15).

For dual-path execution to be feasible, the hard-to-predict (5/5)
branches must not occur too close together in the dynamic stream.  The
paper measures, at each occurrence of a 5/5 branch, the distance in
dynamic branch executions back to the previous 5/5 occurrence, within
an 8-branch window (distances of 8 or more share the "8+" bucket).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..classify.profile import ProfileTable
from ..errors import ConfigurationError
from ..trace.stream import Trace

__all__ = ["DistanceDistribution", "hard_branch_distances", "MAX_TRACKED_DISTANCE"]

#: Distances >= this value share the terminal "8+" bucket.
MAX_TRACKED_DISTANCE = 8


@dataclass(frozen=True, slots=True)
class DistanceDistribution:
    """Relative distribution of distances between hard-branch occurrences.

    ``fractions[d - 1]`` is the fraction of occurrences at distance
    ``d`` for d = 1..7; ``fractions[7]`` is the 8+ bucket.
    """

    benchmark: str
    fractions: tuple[float, ...]
    occurrences: int

    def __post_init__(self) -> None:
        if len(self.fractions) != MAX_TRACKED_DISTANCE:
            raise ConfigurationError(
                f"expected {MAX_TRACKED_DISTANCE} buckets, got {len(self.fractions)}"
            )

    @property
    def close_fraction(self) -> float:
        """Fraction of hard-branch occurrences within 7 branches of the
        previous one — the dual-path hazard the paper highlights."""
        return float(sum(self.fractions[:-1]))

    @property
    def dual_path_friendly(self) -> bool:
        """True when most hard branches are at distance 8+ (the paper's
        conclusion for every benchmark except ijpeg)."""
        return self.fractions[-1] >= 0.5


def hard_branch_distances(
    trace: Trace,
    *,
    profile: ProfileTable | None = None,
    hard_pcs: np.ndarray | None = None,
) -> DistanceDistribution:
    """Distance distribution of 5/5-class branch occurrences in a trace.

    Parameters
    ----------
    trace:
        One benchmark's dynamic branch stream.
    profile:
        Optional precomputed profile of the same trace.
    hard_pcs:
        Optional explicit set of "hard" PCs; defaults to the profile's
        5/5 joint class.
    """
    if hard_pcs is None:
        if profile is None:
            profile = ProfileTable.from_trace(trace)
        hard_pcs = profile.hard_pcs()
    hard_pcs = np.asarray(hard_pcs, dtype=np.int64)

    counts = np.zeros(MAX_TRACKED_DISTANCE, dtype=np.int64)
    if len(hard_pcs) and len(trace):
        positions = np.flatnonzero(np.isin(trace.pcs, hard_pcs))
        if len(positions) > 1:
            distances = np.diff(positions)
            clipped = np.minimum(distances, MAX_TRACKED_DISTANCE)
            counts = np.bincount(clipped, minlength=MAX_TRACKED_DISTANCE + 1)[1:]

    total = counts.sum()
    fractions = tuple((counts / total).tolist()) if total else (0.0,) * MAX_TRACKED_DISTANCE
    benchmark = trace.name.split("/")[0] if trace.name else ""
    return DistanceDistribution(
        benchmark=benchmark, fractions=fractions, occurrences=int(total)
    )
