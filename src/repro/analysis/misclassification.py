"""Section 4.2's misclassification accounting.

The paper's headline comparison: taken-rate classification marks
classes 0 and 10 as cheap-to-predict (Chang et al.), covering 62.90 %
of dynamic branches.  Transition-rate classification marks classes 0
and 1 (plus, for PAs, the trivially-alternating classes 9 and 10),
covering 71.62 % (GAs) / 72.19 % (PAs) — so taken rate *misclassifies*
8.72 % / 9.29 % of dynamic branches as needing long histories when they
do not, "almost a 15 % improvement in classification".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..classify.classes import NUM_CLASSES

__all__ = [
    "MisclassificationReport",
    "misclassification_report",
    "PAPER_TAKEN_IDENTIFIED",
    "PAPER_GAS_TRANSITION_IDENTIFIED",
    "PAPER_PAS_TRANSITION_IDENTIFIED",
    "TAKEN_EASY_CLASSES",
    "TRANSITION_EASY_CLASSES_GAS",
    "TRANSITION_EASY_CLASSES_PAS",
]

#: Classes the taken-rate scheme assigns little-or-no history (Chang et al.).
TAKEN_EASY_CLASSES: tuple[int, ...] = (0, 10)
#: Transition classes best served by short history under GAs (paper §4.2).
TRANSITION_EASY_CLASSES_GAS: tuple[int, ...] = (0, 1)
#: Under PAs, the high-transition classes are also trivially predictable.
TRANSITION_EASY_CLASSES_PAS: tuple[int, ...] = (0, 1, 9, 10)

#: The paper's reported percentages for the same quantities.
PAPER_TAKEN_IDENTIFIED = 62.90
PAPER_GAS_TRANSITION_IDENTIFIED = 71.62
PAPER_PAS_TRANSITION_IDENTIFIED = 72.19


@dataclass(frozen=True, slots=True)
class MisclassificationReport:
    """Percent of dynamic branches identified as cheap by each scheme."""

    taken_identified: float
    gas_transition_identified: float
    pas_transition_identified: float

    @property
    def gas_misclassified(self) -> float:
        """Dynamic % wrongly kept on long histories by taken rate (GAs view)."""
        return self.gas_transition_identified - self.taken_identified

    @property
    def pas_misclassified(self) -> float:
        """Dynamic % wrongly kept on long histories by taken rate (PAs view)."""
        return self.pas_transition_identified - self.taken_identified

    @property
    def improvement_ratio(self) -> float:
        """Relative classification improvement (paper: 'almost 15 %')."""
        if self.taken_identified == 0:
            return 0.0
        return self.pas_misclassified / self.taken_identified

    def misclassified_cells(self) -> list[tuple[int, int]]:
        """Joint (transition, taken) cells counted by transition rate but
        not by taken rate — the bold region of the paper's Table 2."""
        cells = []
        for x_cls in TRANSITION_EASY_CLASSES_PAS:
            for t_cls in range(NUM_CLASSES):
                if t_cls not in TAKEN_EASY_CLASSES:
                    cells.append((x_cls, t_cls))
        return cells


def misclassification_report(
    taken_distribution: np.ndarray,
    transition_distribution: np.ndarray,
) -> MisclassificationReport:
    """Compute the §4.2 percentages from class distributions.

    Both inputs are fraction-per-class arrays (summing to 1), e.g. from
    :meth:`repro.classify.ProfileTable.taken_class_distribution` or a
    :class:`~repro.analysis.history_sweep.SweepResult`.
    """
    taken = np.asarray(taken_distribution, dtype=np.float64) * 100
    transition = np.asarray(transition_distribution, dtype=np.float64) * 100
    return MisclassificationReport(
        taken_identified=float(taken[list(TAKEN_EASY_CLASSES)].sum()),
        gas_transition_identified=float(
            transition[list(TRANSITION_EASY_CLASSES_GAS)].sum()
        ),
        pas_transition_identified=float(
            transition[list(TRANSITION_EASY_CLASSES_PAS)].sum()
        ),
    )
