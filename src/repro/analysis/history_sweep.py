"""History-length sweeps with per-class miss attribution.

The engine behind Figures 3–14: simulate the paper's PAs and GAs
configurations at every history length over every benchmark trace,
profile the branches once, and attribute each misprediction to the
(profiled) taken class, transition class and joint class of the branch
that caused it.  Results are accumulated across benchmarks weighted by
dynamic occurrence, exactly like the paper's suite-level graphs.

Every (kind, history length) configuration is expressed as a
declarative :class:`~repro.spec.TwoLevelSpec` job and planned by
:class:`repro.session.Session`: with ``engine="auto"`` (or
``"batched"``) all configurations of a trace collapse into one batched
multi-config pass, while ``"vectorized"``/``"reference"`` force
per-configuration simulation; the grids are bit-identical either way.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..classify.classes import NUM_CLASSES
from ..classify.profile import ProfileTable
from ..errors import ConfigurationError
from ..predictors.paper_configs import HISTORY_LENGTHS, paper_spec
from ..session import Session
from ..trace.stream import Trace

__all__ = [
    "SweepConfig",
    "ClassMissGrid",
    "SweepResult",
    "TraceSweep",
    "sweep_trace",
    "sweep_workload",
    "accumulate_sweep",
    "run_sweep",
]

PREDICTOR_KINDS = ("pas", "gas")
METRICS = ("taken", "transition")
ENGINES = ("auto", "batched", "vectorized", "reference")


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Parameters of a history sweep.

    ``engine="auto"`` (and ``"batched"``) runs every (kind, history
    length) configuration of a trace through the batched multi-config
    engine in one pass; ``"vectorized"``/``"reference"`` force
    per-configuration simulation on that engine (the batched path is
    bit-exact with both, so the results never differ).
    """

    history_lengths: tuple[int, ...] = tuple(HISTORY_LENGTHS)
    predictor_kinds: tuple[str, ...] = PREDICTOR_KINDS
    engine: str = "auto"

    def __post_init__(self) -> None:
        if not self.history_lengths:
            raise ConfigurationError("history_lengths must be non-empty")
        for kind in self.predictor_kinds:
            if kind not in PREDICTOR_KINDS:
                raise ConfigurationError(
                    f"predictor kind {kind!r} not in {PREDICTOR_KINDS}"
                )
        if self.engine not in ENGINES:
            raise ConfigurationError(f"engine {self.engine!r} not in {ENGINES}")


@dataclass
class ClassMissGrid:
    """Executions and misses per (history length, class) for one predictor.

    ``taken_*`` / ``transition_*`` arrays have shape ``(H, 11)``;
    ``joint_*`` arrays have shape ``(H, 11, 11)`` with rows transition
    classes and columns taken classes (Table 2 layout).  Executions are
    per history length too (identical rows for a fixed trace set, but
    keeping them per-row makes accumulation trivially correct).
    """

    history_lengths: tuple[int, ...]
    taken_executions: np.ndarray = field(default=None)  # type: ignore[assignment]
    taken_misses: np.ndarray = field(default=None)  # type: ignore[assignment]
    transition_executions: np.ndarray = field(default=None)  # type: ignore[assignment]
    transition_misses: np.ndarray = field(default=None)  # type: ignore[assignment]
    joint_executions: np.ndarray = field(default=None)  # type: ignore[assignment]
    joint_misses: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        h = len(self.history_lengths)
        if self.taken_executions is None:
            self.taken_executions = np.zeros((h, NUM_CLASSES), dtype=np.int64)
            self.taken_misses = np.zeros((h, NUM_CLASSES), dtype=np.int64)
            self.transition_executions = np.zeros((h, NUM_CLASSES), dtype=np.int64)
            self.transition_misses = np.zeros((h, NUM_CLASSES), dtype=np.int64)
            self.joint_executions = np.zeros((h, NUM_CLASSES, NUM_CLASSES), dtype=np.int64)
            self.joint_misses = np.zeros((h, NUM_CLASSES, NUM_CLASSES), dtype=np.int64)

    # -- derived rates -----------------------------------------------------

    def miss_rates(self, metric: str) -> np.ndarray:
        """(H, 11) miss-rate grid for ``metric`` ('taken'/'transition')."""
        execs, misses = self._select(metric)
        return _safe_divide(misses, execs)

    def joint_miss_rates(self) -> np.ndarray:
        """(H, 11, 11) miss-rate grid over joint classes."""
        return _safe_divide(self.joint_misses, self.joint_executions)

    def optimal_history(self, metric: str) -> np.ndarray:
        """(11,) history length minimizing each class's miss rate."""
        rates = self.miss_rates(metric)
        lengths = np.asarray(self.history_lengths)
        return lengths[np.argmin(rates, axis=0)]

    def miss_at_optimal(self, metric: str) -> np.ndarray:
        """(11,) per-class miss rate at each class's optimal history."""
        return self.miss_rates(metric).min(axis=0)

    def joint_miss_at_optimal(self) -> np.ndarray:
        """(11, 11) per-joint-class miss rate at the cell's optimal history."""
        return self.joint_miss_rates().min(axis=0)

    def overall_miss_rates(self) -> np.ndarray:
        """(H,) whole-trace miss rate at each history length."""
        execs = self.taken_executions.sum(axis=1)
        misses = self.taken_misses.sum(axis=1)
        return _safe_divide(misses, execs)

    def _select(self, metric: str) -> tuple[np.ndarray, np.ndarray]:
        if metric == "taken":
            return self.taken_executions, self.taken_misses
        if metric == "transition":
            return self.transition_executions, self.transition_misses
        raise ConfigurationError(f"metric must be 'taken' or 'transition', got {metric!r}")

    # -- accumulation -----------------------------------------------------

    def accumulate(self, other: "ClassMissGrid") -> None:
        """Add another grid's counts (suite-level aggregation)."""
        if other.history_lengths != self.history_lengths:
            raise ConfigurationError("cannot accumulate grids with different sweeps")
        self.taken_executions += other.taken_executions
        self.taken_misses += other.taken_misses
        self.transition_executions += other.transition_executions
        self.transition_misses += other.transition_misses
        self.joint_executions += other.joint_executions
        self.joint_misses += other.joint_misses


@dataclass
class SweepResult:
    """Per-predictor class-miss grids plus the aggregated branch profile."""

    config: SweepConfig
    grids: dict[str, ClassMissGrid]
    taken_distribution: np.ndarray
    transition_distribution: np.ndarray
    joint_distribution: np.ndarray
    total_dynamic: int

    def grid(self, kind: str) -> ClassMissGrid:
        """The grid for predictor kind 'pas' or 'gas'."""
        try:
            return self.grids[kind]
        except KeyError:
            raise ConfigurationError(f"sweep did not include predictor {kind!r}") from None


@dataclass
class TraceSweep:
    """One trace's raw contribution to a suite-level sweep.

    Grids hold per-(history, class) execution/miss counts exactly as in
    :class:`SweepResult`; the ``*_counts`` arrays are dynamic-weighted
    class occurrence counts (*not* normalized — divide by the suite's
    ``total_dynamic`` after accumulation).  This is the unit of work the
    experiment pipeline schedules per trace; :func:`run_sweep` is the
    in-process accumulation of these parts in trace order.
    """

    trace_name: str
    grids: dict[str, ClassMissGrid]
    taken_counts: np.ndarray
    transition_counts: np.ndarray
    joint_counts: np.ndarray
    total_dynamic: int


def _empty_part(trace_name: str, config: SweepConfig) -> TraceSweep:
    """A zeroed per-trace sweep contribution."""
    return TraceSweep(
        trace_name=trace_name,
        grids={
            kind: ClassMissGrid(history_lengths=config.history_lengths)
            for kind in config.predictor_kinds
        },
        taken_counts=np.zeros(NUM_CLASSES, dtype=np.float64),
        transition_counts=np.zeros(NUM_CLASSES, dtype=np.float64),
        joint_counts=np.zeros((NUM_CLASSES, NUM_CLASSES), dtype=np.float64),
        total_dynamic=0,
    )


def _add_profile_counts(part: TraceSweep, profile: ProfileTable) -> None:
    """Fold a profile's dynamic-weighted class occurrences into ``part``."""
    part.total_dynamic = profile.total_dynamic
    part.taken_counts += np.bincount(
        profile.taken_classes, weights=profile.executions, minlength=NUM_CLASSES
    )
    part.transition_counts += np.bincount(
        profile.transition_classes, weights=profile.executions, minlength=NUM_CLASSES
    )
    np.add.at(
        part.joint_counts,
        (profile.transition_classes, profile.taken_classes),
        profile.executions.astype(np.float64),
    )


def sweep_trace(trace: Trace, config: SweepConfig | None = None) -> TraceSweep:
    """Sweep one trace over every (kind, history length) configuration.

    All configurations are submitted to one
    :class:`~repro.session.Session` as spec jobs; with ``"auto"``/
    ``"batched"`` the planner collapses them into a single batched
    multi-config pass (``"vectorized"``/``"reference"`` force
    per-configuration simulation; the counts are bit-identical).
    """
    config = config or SweepConfig()
    part = _empty_part(trace.name, config)
    if len(trace) == 0:
        return part

    profile = ProfileTable.from_trace(trace)
    _add_profile_counts(part, profile)

    session = Session(engine=config.engine)
    jobs = [
        (kind, row, session.submit(trace, paper_spec(kind, k)))
        for kind in config.predictor_kinds
        for row, k in enumerate(config.history_lengths)
    ]
    results = session.run()
    for kind, row, job in jobs:
        _accumulate_row(part.grids[kind], row, profile, results[job])
    return part


def sweep_workload(
    workload, config: SweepConfig | None = None
) -> TraceSweep:
    """Sweep one workload, streaming out-of-core when it supports it.

    ``workload`` is a :class:`~repro.trace.stream.Trace` or a
    :class:`~repro.workload_spec.WorkloadSpec`.  Specs that report a
    stream source (large binary trace files — see
    :func:`repro.workload_spec.stream_threshold`) are swept without
    ever materializing the trace: one bounded-memory pass profiles the
    branches (:meth:`ProfileTable.from_chunks`) and one streams every
    (kind, history length) configuration through the chunked batched
    engine.  The resulting :class:`TraceSweep` is bit-identical to
    ``sweep_trace(workload.materialize(), config)``.
    """
    from ..workload_spec import WorkloadSpec

    config = config or SweepConfig()
    if isinstance(workload, Trace):
        return sweep_trace(workload, config)
    if not isinstance(workload, WorkloadSpec):
        raise ConfigurationError(
            f"expected a Trace or WorkloadSpec, got {type(workload).__name__}"
        )
    source = workload.stream_source()
    if source is None:
        return sweep_trace(workload.materialize(), config)
    with source:
        return _sweep_stream(workload.label, source, config)


def _sweep_stream(label: str, reader, config: SweepConfig) -> TraceSweep:
    """Bounded-memory sweep over a chunk reader (two passes: profile,
    then the chunked multi-configuration simulation)."""
    from ..engine.streaming import simulate_batched_stream, simulate_stream

    part = _empty_part(label, config)
    if len(reader) == 0:
        return part

    profile = ProfileTable.from_chunks(iter(reader), name=label)
    _add_profile_counts(part, profile)

    keys = [
        (kind, row, k)
        for kind in config.predictor_kinds
        for row, k in enumerate(config.history_lengths)
    ]
    if config.engine in ("auto", "batched"):
        results = simulate_batched_stream(
            [paper_spec(kind, k).build() for kind, _, k in keys],
            iter(reader),
            trace_name=label,
        )
    else:
        results = [
            simulate_stream(
                paper_spec(kind, k).build(),
                iter(reader),
                engine=config.engine,
                trace_name=label,
            )
            for kind, _, k in keys
        ]
    for (kind, row, _), result in zip(keys, results):
        _accumulate_row(part.grids[kind], row, profile, result)
    return part


def accumulate_sweep(parts: Sequence[TraceSweep], config: SweepConfig) -> SweepResult:
    """Combine per-trace sweep parts (in the given order) into a suite result."""
    grids = {
        kind: ClassMissGrid(history_lengths=config.history_lengths)
        for kind in config.predictor_kinds
    }
    taken_dist = np.zeros(NUM_CLASSES, dtype=np.float64)
    transition_dist = np.zeros(NUM_CLASSES, dtype=np.float64)
    joint_dist = np.zeros((NUM_CLASSES, NUM_CLASSES), dtype=np.float64)
    total_dynamic = 0
    for part in parts:
        for kind in config.predictor_kinds:
            grids[kind].accumulate(part.grids[kind])
        taken_dist += part.taken_counts
        transition_dist += part.transition_counts
        joint_dist += part.joint_counts
        total_dynamic += part.total_dynamic

    if total_dynamic:
        taken_dist /= total_dynamic
        transition_dist /= total_dynamic
        joint_dist /= total_dynamic

    return SweepResult(
        config=config,
        grids=grids,
        taken_distribution=taken_dist,
        transition_distribution=transition_dist,
        joint_distribution=joint_dist,
        total_dynamic=total_dynamic,
    )


def run_sweep(traces: Sequence[Trace], config: SweepConfig | None = None) -> SweepResult:
    """Run the full history sweep over a set of benchmark traces.

    Each trace is swept independently (:func:`sweep_trace`: one session
    per trace, so the memo's per-PC result columns are dropped as soon
    as the rows are accumulated) and the parts are combined in trace
    order — the same decomposition the experiment pipeline executes as
    explicit per-trace artifacts, possibly in parallel.
    """
    config = config or SweepConfig()
    return accumulate_sweep([sweep_trace(trace, config) for trace in traces], config)


def _accumulate_row(grid: ClassMissGrid, row: int, profile: ProfileTable, result) -> None:
    # Simulation results and profiles are both keyed by sorted unique PC,
    # over the same trace, so their columns are aligned by construction.
    if not np.array_equal(result.pcs, profile.pcs):  # pragma: no cover - invariant
        raise ConfigurationError("profile and simulation cover different branches")
    _accumulate_counts(grid, row, profile, result.executions, result.mispredictions)


def _accumulate_counts(
    grid: ClassMissGrid,
    row: int,
    profile: ProfileTable,
    execs: np.ndarray,
    misses: np.ndarray,
) -> None:
    t_cls = profile.taken_classes
    x_cls = profile.transition_classes

    grid.taken_executions[row] += np.bincount(
        t_cls, weights=execs, minlength=NUM_CLASSES
    ).astype(np.int64)
    grid.taken_misses[row] += np.bincount(
        t_cls, weights=misses, minlength=NUM_CLASSES
    ).astype(np.int64)
    grid.transition_executions[row] += np.bincount(
        x_cls, weights=execs, minlength=NUM_CLASSES
    ).astype(np.int64)
    grid.transition_misses[row] += np.bincount(
        x_cls, weights=misses, minlength=NUM_CLASSES
    ).astype(np.int64)
    np.add.at(grid.joint_executions[row], (x_cls, t_cls), execs)
    np.add.at(grid.joint_misses[row], (x_cls, t_cls), misses)


def _safe_divide(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    return np.where(den > 0, num / np.maximum(den, 1), 0.0)
