"""Branch-confidence estimation (paper §5.3).

The paper observes that prediction accuracy correlates tightly with a
branch's joint taken/transition class, so the class itself can serve as
a confidence level — no per-branch accuracy measurement required.
This module provides that class-based estimator plus the dynamic
one-level and two-level estimators of Jacobsen, Rotenberg & Smith
(MICRO 1996) the paper cites, and a common evaluation harness.

A confidence estimator labels each dynamic prediction *high* or *low*
confidence; the standard quality metrics follow Jacobsen et al.:

* coverage — fraction of dynamic branches flagged low confidence,
* PVN — P(misprediction | flagged low), the number dual-path and
  SMT-style consumers care about,
* PVP — P(correct | flagged high).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..classify.profile import ProfileTable
from ..errors import ConfigurationError
from ..predictors.base import BranchPredictor
from ..spec import PredictorSpec, build_predictor
from ..trace.stream import Trace

__all__ = [
    "ConfidenceEstimator",
    "ClassConfidenceEstimator",
    "OneLevelEstimator",
    "TwoLevelEstimator",
    "ConfidenceQuality",
    "evaluate_confidence",
]


class ConfidenceEstimator(ABC):
    """Assigns high/low confidence to each dynamic branch prediction."""

    name: str = "confidence"

    @abstractmethod
    def high_confidence(self, pc: int) -> bool:
        """True if the upcoming prediction for ``pc`` is trusted."""

    @abstractmethod
    def update(self, pc: int, correct: bool) -> None:
        """Inform the estimator whether the prediction was correct."""

    def reset(self) -> None:
        """Reset dynamic state (no-op for static estimators)."""


class ClassConfidenceEstimator(ConfidenceEstimator):
    """Static, profile-driven confidence from joint classes (paper §5.3).

    Parameters
    ----------
    profile:
        Branch profile supplying each PC's joint class.
    class_miss_rates:
        (11, 11) expected miss rate per joint class (e.g. a
        :meth:`~repro.analysis.history_sweep.ClassMissGrid.joint_miss_at_optimal`
        matrix); rows are transition classes.
    threshold:
        Expected miss rate above which a branch is low confidence.
    """

    name = "class-confidence"

    def __init__(
        self,
        profile: ProfileTable,
        class_miss_rates: np.ndarray,
        *,
        threshold: float = 0.2,
    ) -> None:
        rates = np.asarray(class_miss_rates, dtype=np.float64)
        if rates.shape != (11, 11):
            raise ConfigurationError("class_miss_rates must be 11x11")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        self.threshold = threshold
        self._high: dict[int, bool] = {}
        for pc in profile:
            branch = profile[pc]
            expected = rates[branch.transition_class, branch.taken_class]
            self._high[pc] = expected <= threshold

    def high_confidence(self, pc: int) -> bool:
        return self._high.get(pc, True)

    def update(self, pc: int, correct: bool) -> None:
        pass  # static by design: no runtime accuracy measurement needed


class OneLevelEstimator(ConfidenceEstimator):
    """Jacobsen et al.'s one-level dynamic estimator.

    A table of resetting counters indexed by PC: a correct prediction
    increments, a misprediction clears.  Confidence is high once the
    counter reaches ``threshold`` consecutive correct predictions.
    """

    name = "jacobsen-1level"

    def __init__(self, entries: int = 1 << 12, *, threshold: int = 8, max_count: int = 15) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ConfigurationError("entries must be a positive power of two")
        if not 1 <= threshold <= max_count:
            raise ConfigurationError("threshold must be in [1, max_count]")
        self._mask = entries - 1
        self.threshold = threshold
        self.max_count = max_count
        self._counts = np.zeros(entries, dtype=np.int16)

    def high_confidence(self, pc: int) -> bool:
        return int(self._counts[pc & self._mask]) >= self.threshold

    def update(self, pc: int, correct: bool) -> None:
        slot = pc & self._mask
        if correct:
            if self._counts[slot] < self.max_count:
                self._counts[slot] += 1
        else:
            self._counts[slot] = 0

    def reset(self) -> None:
        self._counts.fill(0)


class TwoLevelEstimator(ConfidenceEstimator):
    """Jacobsen et al.'s two-level dynamic estimator.

    Level 1 records each branch's recent correct/incorrect history;
    level 2 is a table of resetting counters indexed by that history
    pattern (XORed with PC bits), capturing *pattern-dependent*
    confidence the one-level scheme misses.
    """

    name = "jacobsen-2level"

    def __init__(
        self,
        entries: int = 1 << 12,
        *,
        history_bits: int = 4,
        threshold: int = 8,
        max_count: int = 15,
    ) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ConfigurationError("entries must be a positive power of two")
        if history_bits < 1:
            raise ConfigurationError("history_bits must be >= 1")
        if not 1 <= threshold <= max_count:
            raise ConfigurationError("threshold must be in [1, max_count]")
        self._mask = entries - 1
        self._hist_mask = (1 << history_bits) - 1
        self.threshold = threshold
        self.max_count = max_count
        self._histories = np.zeros(entries, dtype=np.int32)
        self._counts = np.zeros(entries, dtype=np.int16)

    def _index(self, pc: int) -> int:
        history = int(self._histories[pc & self._mask])
        return (pc ^ history) & self._mask

    def high_confidence(self, pc: int) -> bool:
        return int(self._counts[self._index(pc)]) >= self.threshold

    def update(self, pc: int, correct: bool) -> None:
        index = self._index(pc)
        if correct:
            if self._counts[index] < self.max_count:
                self._counts[index] += 1
        else:
            self._counts[index] = 0
        slot = pc & self._mask
        self._histories[slot] = (
            (int(self._histories[slot]) << 1) | (1 if correct else 0)
        ) & self._hist_mask

    def reset(self) -> None:
        self._histories.fill(0)
        self._counts.fill(0)


@dataclass(frozen=True, slots=True)
class ConfidenceQuality:
    """Jacobsen-style quality metrics for a confidence estimator."""

    estimator_name: str
    total: int
    low_flagged: int
    mispredicts: int
    low_and_miss: int
    high_and_correct: int

    @property
    def coverage(self) -> float:
        """Fraction of dynamic branches flagged low confidence."""
        return self.low_flagged / self.total if self.total else 0.0

    @property
    def pvn(self) -> float:
        """P(misprediction | flagged low confidence)."""
        return self.low_and_miss / self.low_flagged if self.low_flagged else 0.0

    @property
    def pvp(self) -> float:
        """P(correct | flagged high confidence)."""
        high = self.total - self.low_flagged
        return self.high_and_correct / high if high else 0.0

    @property
    def miss_coverage(self) -> float:
        """Fraction of all mispredictions that were flagged low."""
        return self.low_and_miss / self.mispredicts if self.mispredicts else 0.0


def evaluate_confidence(
    estimator: ConfidenceEstimator,
    predictor: BranchPredictor | PredictorSpec,
    trace: Trace,
) -> ConfidenceQuality:
    """Drive predictor + estimator over a trace and score the estimator.

    For every dynamic branch: query confidence, let the predictor
    predict and train, then update the estimator with the prediction's
    correctness (the usual speculative-pipeline information order).
    ``predictor`` may be a stateful predictor or a declarative
    :class:`~repro.spec.PredictorSpec` (built on entry).
    """
    predictor = build_predictor(predictor)
    predictor.reset()
    estimator.reset()
    total = low = misses = low_and_miss = high_and_correct = 0
    for i in range(len(trace)):
        pc = int(trace.pcs[i])
        taken = bool(trace.outcomes[i])
        confident = estimator.high_confidence(pc)
        correct = predictor.access(pc, taken)
        estimator.update(pc, correct)
        total += 1
        if not confident:
            low += 1
            if not correct:
                low_and_miss += 1
        elif correct:
            high_and_correct += 1
        if not correct:
            misses += 1
    return ConfidenceQuality(
        estimator_name=estimator.name,
        total=total,
        low_flagged=low,
        mispredicts=misses,
        low_and_miss=low_and_miss,
        high_and_correct=high_and_correct,
    )
