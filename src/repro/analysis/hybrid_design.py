"""Class-guided hybrid predictor construction (paper §5.4).

The paper's design recipe for an ideal hybrid: classify branches,
provide both global and per-address histories, and vary history length
per class.  :func:`design_hybrid` implements it: from a branch profile
(and the per-class optimal-history data of a sweep, when available) it
routes every branch to the component its class predicts best:

* heavily biased branches (taken classes 0/10, transition classes 0/1)
  → a profile-guided **static** predictor, freeing dynamic tables,
* high-transition branches (classes 9/10) → a **short-history PAs**
  (one or two bits suffice for alternation),
* everything else → a **long-history** component; per-address if the
  branch's own pattern dominates, global otherwise.

The designers emit declarative :class:`~repro.spec.HybridSpec` values
(``design_hybrid_spec`` / ``design_variable_history_hybrid_spec``), so
a designed hybrid is serializable, hashable and schedulable through
:class:`repro.session.Session`; the legacy ``design_hybrid`` /
``design_variable_history_hybrid`` entry points build the stateful
predictor from the spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..classify.profile import ProfileTable
from ..predictors.hybrid import ClassRoutedHybrid
from ..spec import HybridSpec, ProfileStaticSpec, TwoLevelSpec

__all__ = [
    "HybridPlan",
    "design_hybrid",
    "design_hybrid_spec",
    "design_variable_history_hybrid",
    "design_variable_history_hybrid_spec",
]

# Component slots in the constructed hybrid.
STATIC, SHORT_PAS, LONG_PAS, LONG_GLOBAL = range(4)


@dataclass(frozen=True, slots=True)
class HybridPlan:
    """The routing decisions behind a constructed hybrid."""

    routes: dict[int, int]
    component_names: tuple[str, ...]

    def population(self) -> dict[str, int]:
        """Number of static branches routed to each component."""
        counts = dict.fromkeys(self.component_names, 0)
        for component in self.routes.values():
            counts[self.component_names[component]] += 1
        return counts


def design_hybrid_spec(
    profile: ProfileTable,
    *,
    short_history: int = 2,
    long_history: int = 10,
    pht_index_bits: int = 12,
) -> tuple[HybridSpec, HybridPlan]:
    """Design a class-routed hybrid from a branch profile, as a spec.

    Returns the declarative :class:`~repro.spec.HybridSpec` and the
    :class:`HybridPlan` documenting where every branch went (useful for
    reports and the ablation bench).
    """
    static = ProfileStaticSpec.from_profile(profile)
    short_pas = TwoLevelSpec.pas(
        short_history, pht_index_bits=pht_index_bits, bht_entries=1 << 12
    )
    long_pas = TwoLevelSpec.pas(
        min(long_history, pht_index_bits),
        pht_index_bits=pht_index_bits,
        bht_entries=1 << 12,
    )
    long_global = TwoLevelSpec.gshare(long_history, pht_index_bits=pht_index_bits)
    components = (static, short_pas, long_pas, long_global)

    routes: dict[int, int] = {}
    for pc in profile:
        branch = profile[pc]
        routes[pc] = _route_for(branch.taken_class, branch.transition_class)

    spec = HybridSpec(
        components=components,
        routes=tuple(routes.items()),
        name="paper-class-hybrid",
    )
    plan = HybridPlan(
        routes=routes, component_names=_component_names(components)
    )
    return spec, plan


def design_hybrid(
    profile: ProfileTable,
    *,
    short_history: int = 2,
    long_history: int = 10,
    pht_index_bits: int = 12,
) -> tuple[ClassRoutedHybrid, HybridPlan]:
    """Build a class-routed hybrid from a branch profile.

    Legacy entry point: :func:`design_hybrid_spec` plus
    :meth:`~repro.spec.PredictorSpec.build`.
    """
    spec, plan = design_hybrid_spec(
        profile,
        short_history=short_history,
        long_history=long_history,
        pht_index_bits=pht_index_bits,
    )
    return spec.build(), plan


def _route_for(taken_class: int, transition_class: int) -> int:
    if transition_class in (0,) or taken_class in (0, 10):
        return STATIC
    if transition_class in (9, 10):
        return SHORT_PAS
    if transition_class == 1:
        # Low transition but not static: short per-address history.
        return SHORT_PAS
    if taken_class in (4, 5, 6) and transition_class in (4, 5, 6):
        # The hard centre: global correlation is its only hope.
        return LONG_GLOBAL
    return LONG_PAS


def design_variable_history_hybrid_spec(
    profile: ProfileTable,
    grid,
    *,
    metric: str = "transition",
    pht_index_bits: int = 12,
) -> tuple[HybridSpec, HybridPlan]:
    """Per-branch history-length fitting via classes (paper §5.4 + [20]).

    Stark et al. profile the best history length per branch; the paper
    suggests classes make that practical.  This designer reads the
    per-class optimal history lengths from a sweep's
    :class:`~repro.analysis.history_sweep.ClassMissGrid`, creates one
    per-address component spec per distinct optimal length, and routes
    each branch to the component matching its class's optimum.
    """
    optimal = grid.optimal_history(metric)
    lengths = sorted({min(int(k), pht_index_bits) for k in optimal})
    components = tuple(
        TwoLevelSpec.pas(k, pht_index_bits=pht_index_bits, bht_entries=1 << 12)
        for k in lengths
    )
    slot_of_length = {k: i for i, k in enumerate(lengths)}

    routes: dict[int, int] = {}
    for pc in profile:
        branch = profile[pc]
        cls = (
            branch.transition_class if metric == "transition" else branch.taken_class
        )
        routes[pc] = slot_of_length[min(int(optimal[cls]), pht_index_bits)]

    spec = HybridSpec(
        components=components,
        routes=tuple(routes.items()),
        name=f"variable-history-hybrid-{metric}",
    )
    plan = HybridPlan(routes=routes, component_names=_component_names(components))
    return spec, plan


def design_variable_history_hybrid(
    profile: ProfileTable,
    grid,
    *,
    metric: str = "transition",
    pht_index_bits: int = 12,
) -> tuple[ClassRoutedHybrid, HybridPlan]:
    """Legacy entry point: :func:`design_variable_history_hybrid_spec`
    plus :meth:`~repro.spec.PredictorSpec.build`."""
    spec, plan = design_variable_history_hybrid_spec(
        profile, grid, metric=metric, pht_index_bits=pht_index_bits
    )
    return spec.build(), plan


def _component_names(components: tuple) -> tuple[str, ...]:
    """Built-predictor names of the component specs (for reports)."""
    return tuple(
        component.name
        if getattr(component, "name", None)
        else component.build().name
        for component in components
    )
