"""Declarative predictor specifications.

A :class:`PredictorSpec` is a frozen, hashable, JSON-round-trippable
description of a predictor configuration — *what* to simulate, with no
tables, histories or other mutable state attached.  Every predictor
family in the library has a spec class; :meth:`PredictorSpec.build`
materializes the stateful :class:`~repro.predictors.base.BranchPredictor`
on demand.

Why a separate layer (see ``docs/API.md`` for the full schema):

* **Serializable** — specs round-trip through ``to_dict``/``from_dict``
  and JSON, so configurations can live in files, caches and requests
  (``repro simulate --spec …``).
* **Hashable** — equal specs compare and hash equal, which is what lets
  :class:`repro.session.Session` deduplicate identical jobs and plan
  batched execution.
* **Inspectable** — planners can read a spec's geometry (and route the
  two-level family to the batched engine) without building anything.

The registry maps each spec's ``kind`` string to its class;
:func:`spec_from_dict` dispatches on that key.  Specs deliberately
import no predictor modules at import time, so the predictor package
can itself emit specs (``repro.predictors.paper_configs``) without an
import cycle.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, ClassVar

from .errors import ConfigurationError

__all__ = [
    "PredictorSpec",
    "StaticSpec",
    "ProfileStaticSpec",
    "LastOutcomeSpec",
    "BimodalSpec",
    "TwoLevelSpec",
    "AgreeSpec",
    "TournamentSpec",
    "HybridSpec",
    "YagsSpec",
    "BiModeSpec",
    "FilterSpec",
    "DhlfSpec",
    "spec_kinds",
    "spec_class",
    "spec_from_dict",
    "spec_from_json",
    "build_predictor",
]

_REGISTRY: dict[str, type["PredictorSpec"]] = {}


def _register(cls: type["PredictorSpec"]) -> type["PredictorSpec"]:
    """Class decorator: enter ``cls`` into the kind-keyed registry."""
    kind = cls.kind
    if not kind or kind in _REGISTRY:
        raise ConfigurationError(f"duplicate or empty spec kind {kind!r}")
    _REGISTRY[kind] = cls
    return cls


def _duplicate_keys(pairs: tuple) -> list:
    """Keys appearing more than once in a sorted ``(key, value)`` tuple."""
    return sorted({a[0] for a, b in zip(pairs, pairs[1:]) if a[0] == b[0]})


def _check_pow2(value: int, what: str) -> None:
    if not isinstance(value, int):
        raise ConfigurationError(f"{what} must be an integer, got {value!r}")
    if value < 1 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")


def _encode(value: Any) -> Any:
    """Encode one field value into plain JSON-compatible data."""
    if isinstance(value, PredictorSpec):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    return value


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode`: dicts with a ``kind`` become specs,
    lists become tuples (JSON has no tuple type)."""
    if isinstance(value, Mapping) and "kind" in value:
        return spec_from_dict(value)
    if isinstance(value, (list, tuple)):
        return tuple(_decode(v) for v in value)
    return value


class PredictorSpec:
    """Base class for declarative predictor configurations.

    Subclasses are frozen dataclasses registered under a unique
    :attr:`kind` string.  Two specs are equal (and hash equal) iff they
    have the same kind and field values, which makes specs usable as
    dictionary keys, cache keys and session job identities.
    """

    __slots__ = ()

    #: Registry key; also the ``"kind"`` entry of the serialized form.
    kind: ClassVar[str] = ""

    # -- construction -------------------------------------------------------

    def build(self):
        """Materialize the stateful :class:`BranchPredictor`."""
        raise NotImplementedError

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: ``{"kind": …, **fields}`` (JSON-compatible)."""
        data: dict[str, Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            data[f.name] = _encode(getattr(self, f.name))
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PredictorSpec":
        """Rebuild a spec from its :meth:`to_dict` form.

        Called on :class:`PredictorSpec` it dispatches through the
        registry; called on a subclass it additionally checks the kind.
        """
        if cls is PredictorSpec:
            return spec_from_dict(data)
        kind = data.get("kind", cls.kind)
        if kind != cls.kind:
            raise ConfigurationError(
                f"spec kind mismatch: expected {cls.kind!r}, got {kind!r}"
            )
        known = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        extra = set(data) - known - {"kind"}
        if extra:
            raise ConfigurationError(
                f"unknown field(s) {sorted(extra)} for spec kind {cls.kind!r}"
            )
        kwargs = {k: _decode(v) for k, v in data.items() if k != "kind"}
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            # Wrong-typed field values (e.g. a JSON float where an int
            # belongs) must surface as the library's error type — this
            # is the JSON-facing boundary the CLI catches.
            raise ConfigurationError(f"invalid {cls.kind!r} spec: {exc}") from None

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON text form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "PredictorSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid spec JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("spec JSON must be an object")
        return cls.from_dict(data)

    # -- hardware cost ------------------------------------------------------

    def storage_bits(self) -> int:
        """Hardware state of the built predictor, in bits."""
        return self.build().storage_bits()

    def storage_bytes(self) -> float:
        """Hardware state in bytes."""
        return self.storage_bits() / 8


# -- static family ------------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class StaticSpec(PredictorSpec):
    """Always-taken (``direction=True``) or always-not-taken predictor."""

    kind: ClassVar[str] = "static"

    direction: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "direction", bool(self.direction))

    def build(self):
        from .predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor

        return AlwaysTakenPredictor() if self.direction else AlwaysNotTakenPredictor()


@_register
@dataclass(frozen=True, slots=True)
class ProfileStaticSpec(PredictorSpec):
    """Profile-guided static predictor: a fixed direction per branch PC.

    ``directions`` is a sorted tuple of ``(pc, taken)`` pairs (a frozen
    mapping); ``default`` covers branches absent from the profile.
    """

    kind: ClassVar[str] = "profile-static"

    directions: tuple[tuple[int, bool], ...] = ()
    default: bool = True

    def __post_init__(self) -> None:
        try:
            normalized = tuple(
                sorted((int(pc), bool(taken)) for pc, taken in self.directions)
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"directions must be (pc, taken) pairs: {exc}"
            ) from None
        duplicates = _duplicate_keys(normalized)
        if duplicates:
            raise ConfigurationError(
                f"duplicate PCs in directions: {duplicates} (one direction per branch)"
            )
        object.__setattr__(self, "directions", normalized)
        object.__setattr__(self, "default", bool(self.default))

    @classmethod
    def from_profile(cls, profile, *, default: bool = True) -> "ProfileStaticSpec":
        """Majority direction per branch from a
        :class:`~repro.classify.profile.ProfileTable`."""
        directions = tuple(
            (int(pc), bool(profile[pc].taken_rate >= 0.5)) for pc in profile
        )
        return cls(directions=directions, default=default)

    def build(self):
        from .predictors.static import ProfileStaticPredictor

        return ProfileStaticPredictor(dict(self.directions), default=self.default)


# -- PC-indexed table family --------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class LastOutcomeSpec(PredictorSpec):
    """One-bit last-outcome predictor table."""

    kind: ClassVar[str] = "last-outcome"

    entries: int = 1 << 14
    initial: bool = True

    def __post_init__(self) -> None:
        _check_pow2(self.entries, "entries")
        object.__setattr__(self, "initial", bool(self.initial))

    def build(self):
        from .predictors.bimodal import LastOutcomePredictor

        return LastOutcomePredictor(self.entries, initial=self.initial)


@_register
@dataclass(frozen=True, slots=True)
class BimodalSpec(PredictorSpec):
    """PC-indexed saturating-counter table (the history-length-0 machine)."""

    kind: ClassVar[str] = "bimodal"

    entries: int = 1 << 17
    counter_bits: int = 2

    def __post_init__(self) -> None:
        _check_pow2(self.entries, "entries")
        if not 1 <= self.counter_bits <= 8:
            raise ConfigurationError(
                f"counter_bits must be in [1, 8], got {self.counter_bits}"
            )

    def build(self):
        from .predictors.bimodal import BimodalPredictor

        return BimodalPredictor(self.entries, counter_bits=self.counter_bits)


# -- two-level family ---------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class TwoLevelSpec(PredictorSpec):
    """Two-level adaptive predictor geometry (PAs/GAs/gshare/gselect/pshare).

    One spec covers the whole Yeh & Patt family: the history kind
    (global vs per-address), history length, PHT size, and the
    history/PC combination scheme (concatenation vs XOR).  The named
    classmethods mirror the constructors in
    :mod:`repro.predictors.twolevel`.
    """

    kind: ClassVar[str] = "two-level"

    history_kind: str = "global"
    history_bits: int = 0
    pht_index_bits: int = 17
    index_scheme: str = "concat"
    bht_entries: int | None = None
    counter_bits: int = 2
    name: str | None = None

    def __post_init__(self) -> None:
        if self.history_kind not in ("global", "per-address"):
            raise ConfigurationError(
                f"history_kind must be 'global' or 'per-address', got {self.history_kind!r}"
            )
        if self.index_scheme not in ("concat", "xor"):
            raise ConfigurationError(
                f"index_scheme must be 'concat' or 'xor', got {self.index_scheme!r}"
            )
        if self.history_bits < 0:
            raise ConfigurationError("history_bits must be >= 0")
        if self.pht_index_bits < 1:
            raise ConfigurationError("pht_index_bits must be >= 1")
        if self.index_scheme == "concat" and self.history_bits > self.pht_index_bits:
            raise ConfigurationError(
                f"concat indexing needs history_bits ({self.history_bits}) <= "
                f"pht_index_bits ({self.pht_index_bits})"
            )
        if not 1 <= self.counter_bits <= 8:
            raise ConfigurationError(
                f"counter_bits must be in [1, 8], got {self.counter_bits}"
            )
        if self.history_kind == "per-address" and self.history_bits > 0:
            if self.bht_entries is None:
                raise ConfigurationError("per-address specs need bht_entries")
            _check_pow2(self.bht_entries, "bht_entries")
        else:
            # No BHT exists for global or zero-history geometries, so a
            # stray bht_entries value is normalized away — otherwise two
            # specs describing the same machine would compare unequal
            # and defeat Session dedupe.
            object.__setattr__(self, "bht_entries", None)

    # -- named family members ----------------------------------------------

    @classmethod
    def gas(
        cls, history_bits: int, *, pht_index_bits: int = 17, counter_bits: int = 2
    ) -> "TwoLevelSpec":
        """Global history concatenated with PC fill bits (the paper's GAs)."""
        return cls(
            history_kind="global",
            history_bits=history_bits,
            pht_index_bits=pht_index_bits,
            index_scheme="concat",
            counter_bits=counter_bits,
            name=f"GAs-h{history_bits}",
        )

    @classmethod
    def pas(
        cls,
        history_bits: int,
        *,
        pht_index_bits: int = 16,
        bht_entries: int = 1 << 13,
        counter_bits: int = 2,
    ) -> "TwoLevelSpec":
        """Per-address history concatenated with PC fill bits (the paper's PAs)."""
        return cls(
            history_kind="per-address",
            history_bits=history_bits,
            pht_index_bits=pht_index_bits,
            index_scheme="concat",
            bht_entries=bht_entries if history_bits > 0 else None,
            counter_bits=counter_bits,
            name=f"PAs-h{history_bits}",
        )

    @classmethod
    def gshare(
        cls, history_bits: int, *, pht_index_bits: int | None = None, counter_bits: int = 2
    ) -> "TwoLevelSpec":
        """McFarling's gshare: global history XORed with the branch address."""
        if pht_index_bits is None:
            pht_index_bits = max(history_bits, 1)
        return cls(
            history_kind="global",
            history_bits=history_bits,
            pht_index_bits=pht_index_bits,
            index_scheme="xor",
            counter_bits=counter_bits,
            name=f"gshare-h{history_bits}",
        )

    @classmethod
    def gselect(
        cls, history_bits: int, *, pht_index_bits: int, counter_bits: int = 2
    ) -> "TwoLevelSpec":
        """gselect: global history concatenated with branch address bits."""
        return cls(
            history_kind="global",
            history_bits=history_bits,
            pht_index_bits=pht_index_bits,
            index_scheme="concat",
            counter_bits=counter_bits,
            name=f"gselect-h{history_bits}",
        )

    @classmethod
    def pshare(
        cls,
        history_bits: int,
        *,
        pht_index_bits: int | None = None,
        bht_entries: int = 1 << 13,
        counter_bits: int = 2,
    ) -> "TwoLevelSpec":
        """pshare: per-address history XORed with the branch address."""
        if pht_index_bits is None:
            pht_index_bits = max(history_bits, 1)
        return cls(
            history_kind="per-address",
            history_bits=history_bits,
            pht_index_bits=pht_index_bits,
            index_scheme="xor",
            bht_entries=bht_entries if history_bits > 0 else None,
            counter_bits=counter_bits,
            name=f"pshare-h{history_bits}",
        )

    def build(self):
        from .predictors.twolevel import TwoLevelPredictor

        return TwoLevelPredictor(
            history_kind=self.history_kind,
            history_bits=self.history_bits,
            pht_index_bits=self.pht_index_bits,
            index_scheme=self.index_scheme,
            bht_entries=self.bht_entries if self.history_bits > 0 else None,
            counter_bits=self.counter_bits,
            name=self.name,
        )

    def storage_bits(self) -> int:
        # Closed form — no need to allocate the tables to price them.
        bits = (1 << self.pht_index_bits) * self.counter_bits
        if self.history_bits > 0:
            if self.history_kind == "global":
                bits += self.history_bits
            else:
                assert self.bht_entries is not None
                bits += self.bht_entries * self.history_bits
        return bits


# -- interference-aware global schemes ---------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class AgreeSpec(PredictorSpec):
    """Agree predictor: gshare-indexed PHT over per-branch biasing bits."""

    kind: ClassVar[str] = "agree"

    history_bits: int = 12
    pht_index_bits: int = 12
    bias_entries: int = 1 << 14

    def __post_init__(self) -> None:
        if self.history_bits < 0:
            raise ConfigurationError("history_bits must be >= 0")
        if self.pht_index_bits < 1:
            raise ConfigurationError("pht_index_bits must be >= 1")
        _check_pow2(self.bias_entries, "bias_entries")

    def build(self):
        from .predictors.agree import AgreePredictor

        return AgreePredictor(
            self.history_bits,
            pht_index_bits=self.pht_index_bits,
            bias_entries=self.bias_entries,
        )


@_register
@dataclass(frozen=True, slots=True)
class YagsSpec(PredictorSpec):
    """YAGS: choice PHT plus tagged exception caches."""

    kind: ClassVar[str] = "yags"

    history_bits: int = 12
    cache_index_bits: int = 11
    tag_bits: int = 8
    choice_index_bits: int = 13

    def __post_init__(self) -> None:
        if self.history_bits < 0:
            raise ConfigurationError("history_bits must be >= 0")
        if self.cache_index_bits < 1 or self.choice_index_bits < 1:
            raise ConfigurationError("index bit widths must be >= 1")
        if self.tag_bits < 1:
            raise ConfigurationError("tag_bits must be >= 1")

    def build(self):
        from .predictors.yags import YagsPredictor

        return YagsPredictor(
            self.history_bits,
            cache_index_bits=self.cache_index_bits,
            tag_bits=self.tag_bits,
            choice_index_bits=self.choice_index_bits,
        )


@_register
@dataclass(frozen=True, slots=True)
class BiModeSpec(PredictorSpec):
    """Bi-Mode: taken/not-taken direction banks plus a choice PHT."""

    kind: ClassVar[str] = "bimode"

    history_bits: int = 12
    direction_index_bits: int = 12
    choice_index_bits: int = 13

    def __post_init__(self) -> None:
        if self.history_bits < 0:
            raise ConfigurationError("history_bits must be >= 0")
        if self.direction_index_bits < 1 or self.choice_index_bits < 1:
            raise ConfigurationError("index bit widths must be >= 1")

    def build(self):
        from .predictors.bimode import BiModePredictor

        return BiModePredictor(
            self.history_bits,
            direction_index_bits=self.direction_index_bits,
            choice_index_bits=self.choice_index_bits,
        )


@_register
@dataclass(frozen=True, slots=True)
class FilterSpec(PredictorSpec):
    """Bias filter in front of a dynamic backing predictor.

    ``backing=None`` uses the library default (gshare-12 into a 2^14
    PHT), exactly like :class:`~repro.predictors.filter.FilterPredictor`.
    """

    kind: ClassVar[str] = "filter"

    backing: PredictorSpec | None = None
    threshold: int = 32
    counter_bits: int = 6
    entries: int = 1 << 14

    def __post_init__(self) -> None:
        if self.backing is not None and not isinstance(self.backing, PredictorSpec):
            raise ConfigurationError("backing must be a PredictorSpec or None")
        _check_pow2(self.entries, "entries")
        max_count = (1 << self.counter_bits) - 1
        if not 1 <= self.threshold <= max_count:
            raise ConfigurationError(
                f"threshold {self.threshold} must fit the {self.counter_bits}-bit counter"
            )

    def build(self):
        from .predictors.filter import FilterPredictor

        return FilterPredictor(
            self.backing.build() if self.backing is not None else None,
            threshold=self.threshold,
            counter_bits=self.counter_bits,
            entries=self.entries,
        )


@_register
@dataclass(frozen=True, slots=True)
class DhlfSpec(PredictorSpec):
    """Dynamic History-Length Fitting gshare."""

    kind: ClassVar[str] = "dhlf"

    pht_index_bits: int = 14
    interval: int = 16 * 1024
    start_history: int | None = None

    def __post_init__(self) -> None:
        if self.pht_index_bits < 1:
            raise ConfigurationError("pht_index_bits must be >= 1")
        if self.interval < 16:
            raise ConfigurationError("interval must be >= 16")
        if self.start_history is not None and not 0 <= self.start_history <= self.pht_index_bits:
            raise ConfigurationError("start_history out of range")

    def build(self):
        from .predictors.dhlf import DhlfPredictor

        return DhlfPredictor(
            pht_index_bits=self.pht_index_bits,
            interval=self.interval,
            start_history=self.start_history,
        )


# -- combining families -------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class TournamentSpec(PredictorSpec):
    """McFarling tournament of two component specs with a PC-indexed chooser."""

    kind: ClassVar[str] = "tournament"

    first: PredictorSpec = dataclasses.field(default_factory=BimodalSpec)
    second: PredictorSpec = dataclasses.field(default_factory=lambda: TwoLevelSpec.gshare(12))
    chooser_index_bits: int = 13
    name: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.first, PredictorSpec) or not isinstance(self.second, PredictorSpec):
            raise ConfigurationError("tournament components must be PredictorSpecs")
        if self.chooser_index_bits < 1:
            raise ConfigurationError("chooser_index_bits must be >= 1")

    def build(self):
        from .predictors.tournament import TournamentPredictor

        return TournamentPredictor(
            self.first.build(),
            self.second.build(),
            chooser_index_bits=self.chooser_index_bits,
            name=self.name,
        )


@_register
@dataclass(frozen=True, slots=True)
class HybridSpec(PredictorSpec):
    """Class-routed hybrid: component specs plus a frozen PC→slot routing.

    ``routes`` is a sorted tuple of ``(pc, component_index)`` pairs;
    branches absent from it fall back to component 0, exactly like
    :class:`~repro.predictors.hybrid.ClassRoutedHybrid`.
    """

    kind: ClassVar[str] = "hybrid"

    components: tuple[PredictorSpec, ...] = ()
    routes: tuple[tuple[int, int], ...] = ()
    name: str | None = None

    def __post_init__(self) -> None:
        components = tuple(self.components)
        if not components:
            raise ConfigurationError("hybrid needs at least one component")
        for component in components:
            if not isinstance(component, PredictorSpec):
                raise ConfigurationError("hybrid components must be PredictorSpecs")
        try:
            routes = tuple(sorted((int(pc), int(slot)) for pc, slot in self.routes))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"routes must be (pc, slot) pairs: {exc}") from None
        bad = {pc: slot for pc, slot in routes if not 0 <= slot < len(components)}
        if bad:
            raise ConfigurationError(f"route targets out of range: {bad}")
        duplicates = _duplicate_keys(routes)
        if duplicates:
            raise ConfigurationError(
                f"duplicate PCs in routes: {duplicates} (one slot per branch)"
            )
        object.__setattr__(self, "components", components)
        object.__setattr__(self, "routes", routes)

    def build(self):
        from .predictors.hybrid import ClassRoutedHybrid

        return ClassRoutedHybrid(
            [component.build() for component in self.components],
            dict(self.routes),
            name=self.name,
        )


# -- registry API -------------------------------------------------------------


def spec_kinds() -> tuple[str, ...]:
    """Every registered spec kind, in registration order."""
    return tuple(_REGISTRY)


def spec_class(kind: str) -> type[PredictorSpec]:
    """The spec class registered under ``kind``."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown spec kind {kind!r}; available: {sorted(_REGISTRY)}"
        ) from None


def spec_from_dict(data: Mapping[str, Any]) -> PredictorSpec:
    """Rebuild any spec from its :meth:`PredictorSpec.to_dict` form."""
    if "kind" not in data:
        raise ConfigurationError("spec dict needs a 'kind' key")
    return spec_class(data["kind"]).from_dict(data)


def spec_from_json(text: str) -> PredictorSpec:
    """Rebuild any spec from JSON text."""
    return PredictorSpec.from_json(text)


def build_predictor(predictor_or_spec):
    """Pass a :class:`BranchPredictor` through; build a :class:`PredictorSpec`.

    The single coercion point used by every API that accepts either.
    """
    if isinstance(predictor_or_spec, PredictorSpec):
        return predictor_or_spec.build()
    from .predictors.base import BranchPredictor

    if isinstance(predictor_or_spec, BranchPredictor):
        return predictor_or_spec
    raise ConfigurationError(
        f"expected a BranchPredictor or PredictorSpec, got {type(predictor_or_spec).__name__}"
    )
