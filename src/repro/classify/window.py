"""Classification straight from pattern-history bits (paper §6).

The paper's future-work observation: "If pattern history is already
maintained for each branch, it would be easy to also maintain the
local transition and taken rates for this history window."  This
module does exactly that — given the k-bit outcome window a two-level
predictor already stores in its BHT, derive the windowed taken rate,
transition rate and joint class with pure bit arithmetic, no extra
counters at all.
"""

from __future__ import annotations

from ..errors import ClassificationError
from ..predictors.history import BranchHistoryTable
from .classes import JointClass, rate_class

__all__ = [
    "window_taken_rate",
    "window_transition_rate",
    "window_joint_class",
    "BhtWindowClassifier",
]


def window_taken_rate(history: int, bits: int) -> float:
    """Taken rate over a k-bit outcome window (popcount / k)."""
    _check(history, bits)
    return history.bit_count() / bits


def window_transition_rate(history: int, bits: int) -> float:
    """Transition rate over a k-bit outcome window.

    Adjacent-bit disagreements divided by k − 1 (windows of one
    outcome have no transitions).
    """
    _check(history, bits)
    if bits == 1:
        return 0.0
    flips = (history ^ (history >> 1)) & ((1 << (bits - 1)) - 1)
    return flips.bit_count() / (bits - 1)


def window_joint_class(history: int, bits: int) -> JointClass:
    """Joint class estimated from a history window alone."""
    return JointClass(
        taken=rate_class(window_taken_rate(history, bits)),
        transition=rate_class(window_transition_rate(history, bits)),
    )


def _check(history: int, bits: int) -> None:
    if bits < 1:
        raise ClassificationError("window must have >= 1 bit")
    if not 0 <= history < (1 << bits):
        raise ClassificationError(
            f"history {history:#x} does not fit in {bits} bits"
        )


class BhtWindowClassifier:
    """Free-riding classifier on an existing branch history table.

    Wraps the BHT a PAs-style predictor already maintains; classifying
    a branch costs two popcounts of state that exists anyway — the
    zero-hardware implementation path the paper sketches in §6.
    """

    def __init__(self, bht: BranchHistoryTable) -> None:
        if bht.bits < 2:
            raise ClassificationError(
                "window classification needs a BHT with >= 2 history bits"
            )
        self._bht = bht

    @property
    def window_bits(self) -> int:
        """Width of the observation window (the BHT's history length)."""
        return self._bht.bits

    def taken_rate(self, pc: int) -> float:
        """Windowed taken rate for ``pc`` (from its BHT slot)."""
        return window_taken_rate(self._bht.value(pc), self._bht.bits)

    def transition_rate(self, pc: int) -> float:
        """Windowed transition rate for ``pc``."""
        return window_transition_rate(self._bht.value(pc), self._bht.bits)

    def joint_class(self, pc: int) -> JointClass:
        """Windowed joint class for ``pc``."""
        return window_joint_class(self._bht.value(pc), self._bht.bits)

    def storage_bits(self) -> int:
        """Extra hardware cost: zero — the BHT already exists."""
        return 0
