"""Online (hardware-style) transition/taken rate classification.

The paper's future-work section asks whether transition-rate
classification "based on some form of dynamic counter" could replace
profiling.  :class:`DynamicClassifier` models that hardware: a small
table of per-branch taken/transition counters over a sliding execution
window, classifying each branch from whatever it has observed so far.
The convergence of its online classes to the profiled classes is
exercised in tests and the classification examples.
"""

from __future__ import annotations

import numpy as np

from ..errors import ClassificationError
from .classes import JointClass, rate_class

__all__ = ["DynamicClassifier"]


class DynamicClassifier:
    """Table of dynamic taken/transition rate estimators.

    Parameters
    ----------
    entries:
        Power-of-two number of table slots (PC-indexed; aliasing is
        modelled just like the predictors' tables).
    window:
        Maximum executions remembered per slot.  Counts are halved when
        the window fills, so the estimate tracks phase changes instead
        of averaging over the whole run (an exponential-ish decay that
        is cheap in hardware).
    """

    def __init__(self, entries: int = 1 << 12, *, window: int = 256) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ClassificationError("entries must be a positive power of two")
        if window < 2:
            raise ClassificationError("window must be >= 2")
        self.entries = entries
        self.window = window
        self._mask = entries - 1
        self._executions = np.zeros(entries, dtype=np.int64)
        self._taken = np.zeros(entries, dtype=np.int64)
        self._transitions = np.zeros(entries, dtype=np.int64)
        self._last = np.zeros(entries, dtype=np.uint8)
        self._seen = np.zeros(entries, dtype=bool)

    def observe(self, pc: int, taken: bool) -> None:
        """Feed one dynamic branch execution into the table."""
        slot = pc & self._mask
        if self._seen[slot]:
            if bool(self._last[slot]) != bool(taken):
                self._transitions[slot] += 1
        else:
            self._seen[slot] = True
        self._last[slot] = 1 if taken else 0
        self._executions[slot] += 1
        if taken:
            self._taken[slot] += 1
        if self._executions[slot] >= self.window:
            # Halve all counts: keeps the ratio, forgets old phases.
            self._executions[slot] >>= 1
            self._taken[slot] >>= 1
            self._transitions[slot] >>= 1

    def taken_rate(self, pc: int) -> float:
        """Current taken-rate estimate for ``pc`` (0 if unseen)."""
        slot = pc & self._mask
        n = int(self._executions[slot])
        return int(self._taken[slot]) / n if n else 0.0

    def transition_rate(self, pc: int) -> float:
        """Current transition-rate estimate for ``pc`` (0 if unseen)."""
        slot = pc & self._mask
        n = int(self._executions[slot])
        if n <= 1:
            return 0.0
        return min(int(self._transitions[slot]) / (n - 1), 1.0)

    def executions(self, pc: int) -> int:
        """Window-decayed execution count for ``pc``'s slot."""
        return int(self._executions[pc & self._mask])

    def joint_class(self, pc: int) -> JointClass:
        """Online joint class estimate for ``pc``."""
        return JointClass(
            taken=rate_class(self.taken_rate(pc)),
            transition=rate_class(self.transition_rate(pc)),
        )

    def reset(self) -> None:
        """Clear the table."""
        self._executions.fill(0)
        self._taken.fill(0)
        self._transitions.fill(0)
        self._last.fill(0)
        self._seen.fill(False)

    def storage_bits(self) -> int:
        """Approximate hardware cost of the classifier table."""
        counter_bits = int(self.window).bit_length()
        # executions + taken + transitions counters, last bit, seen bit
        return self.entries * (3 * counter_bits + 2)
