"""Profile-based branch classification.

The paper classifies branches from a profiling pass: run the program
once, measure every branch's taken and transition rate, and assign
classes.  :class:`ProfileTable` is that profile — per-PC rates, classes
and dynamic weights, built from a :class:`~repro.trace.stats.TraceStats`
in one vectorized pass — and is the input to every analysis module and
to the class-guided hybrid construction.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass

import numpy as np

from ..trace.stats import TraceStats
from ..trace.stream import Trace
from .classes import NUM_CLASSES, JointClass, rate_classes

__all__ = ["BranchProfile", "ProfileTable"]


@dataclass(frozen=True, slots=True)
class BranchProfile:
    """Classification record for one static branch."""

    pc: int
    executions: int
    taken_rate: float
    transition_rate: float
    taken_class: int
    transition_class: int

    @property
    def joint(self) -> JointClass:
        """The branch's joint (taken, transition) class."""
        return JointClass(taken=self.taken_class, transition=self.transition_class)

    @property
    def is_hard(self) -> bool:
        """True for paper's 5/5 hard-to-predict branches."""
        return self.joint.is_hard


class ProfileTable(Mapping[int, BranchProfile]):
    """Per-PC taken/transition classification of a whole trace."""

    __slots__ = (
        "stats",
        "_pcs",
        "_executions",
        "_taken_rates",
        "_transition_rates",
        "_taken_classes",
        "_transition_classes",
        "_index",
        "name",
    )

    def __init__(self, stats: TraceStats) -> None:
        #: The raw per-PC counts this profile was classified from.  Kept
        #: so the profile can be serialized exactly (the experiment
        #: pipeline's artifact store round-trips the integer counts, not
        #: the derived float rates).
        self.stats = stats
        self._pcs = stats.pcs
        self._executions = stats.executions
        self._taken_rates = stats.taken_rates()
        self._transition_rates = stats.transition_rates()
        self._taken_classes = rate_classes(self._taken_rates)
        self._transition_classes = rate_classes(self._transition_rates)
        self._index = {int(pc): i for i, pc in enumerate(self._pcs)}
        self.name = stats.name

    @classmethod
    def from_trace(cls, trace: Trace) -> "ProfileTable":
        """Profile and classify a trace in one step."""
        return cls(TraceStats.from_trace(trace))

    @classmethod
    def from_chunks(cls, chunks, *, name: str | None = None) -> "ProfileTable":
        """Profile and classify a chunk iterator with O(chunk) memory.

        Bit-identical to :meth:`from_trace` over the concatenated
        chunks (see :meth:`repro.trace.stats.TraceStats.from_chunks`).
        """
        return cls(TraceStats.from_chunks(chunks, name=name))

    # -- mapping protocol ---------------------------------------------------

    def __getitem__(self, pc: int) -> BranchProfile:
        i = self._index[pc]
        return BranchProfile(
            pc=int(self._pcs[i]),
            executions=int(self._executions[i]),
            taken_rate=float(self._taken_rates[i]),
            transition_rate=float(self._transition_rates[i]),
            taken_class=int(self._taken_classes[i]),
            transition_class=int(self._transition_classes[i]),
        )

    def __iter__(self) -> Iterator[int]:
        return (int(pc) for pc in self._pcs)

    def __len__(self) -> int:
        return len(self._pcs)

    # -- column access ---------------------------------------------------

    @property
    def pcs(self) -> np.ndarray:
        """Sorted distinct branch PCs."""
        return self._pcs

    @property
    def executions(self) -> np.ndarray:
        """Executions per PC."""
        return self._executions

    @property
    def taken_classes(self) -> np.ndarray:
        """Taken-rate class per PC."""
        return self._taken_classes

    @property
    def transition_classes(self) -> np.ndarray:
        """Transition-rate class per PC."""
        return self._transition_classes

    @property
    def total_dynamic(self) -> int:
        """Total dynamic executions profiled."""
        return int(self._executions.sum())

    # -- class queries ------------------------------------------------------

    def pcs_in_taken_class(self, cls: int) -> np.ndarray:
        """PCs whose taken-rate class is ``cls``."""
        return self._pcs[self._taken_classes == cls]

    def pcs_in_transition_class(self, cls: int) -> np.ndarray:
        """PCs whose transition-rate class is ``cls``."""
        return self._pcs[self._transition_classes == cls]

    def pcs_in_joint_class(self, taken_cls: int, transition_cls: int) -> np.ndarray:
        """PCs in a joint (taken, transition) class cell."""
        mask = (self._taken_classes == taken_cls) & (
            self._transition_classes == transition_cls
        )
        return self._pcs[mask]

    def hard_pcs(self) -> np.ndarray:
        """PCs in the 5/5 hard-to-predict class."""
        return self.pcs_in_joint_class(5, 5)

    # -- dynamic-weighted distributions --------------------------------------

    def taken_class_distribution(self) -> np.ndarray:
        """Fraction of *dynamic* branches per taken class (sums to 1)."""
        return self._distribution(self._taken_classes)

    def transition_class_distribution(self) -> np.ndarray:
        """Fraction of dynamic branches per transition class (sums to 1)."""
        return self._distribution(self._transition_classes)

    def joint_distribution(self) -> np.ndarray:
        """(11, 11) matrix: dynamic fraction per (transition, taken) cell.

        Rows are transition classes, columns taken classes — the layout
        of the paper's Table 2.
        """
        matrix = np.zeros((NUM_CLASSES, NUM_CLASSES), dtype=np.float64)
        total = self.total_dynamic
        if total == 0:
            return matrix
        np.add.at(
            matrix,
            (self._transition_classes, self._taken_classes),
            self._executions / total,
        )
        return matrix

    def _distribution(self, classes: np.ndarray) -> np.ndarray:
        total = self.total_dynamic
        if total == 0:
            return np.zeros(NUM_CLASSES, dtype=np.float64)
        return np.bincount(
            classes, weights=self._executions, minlength=NUM_CLASSES
        ) / total
