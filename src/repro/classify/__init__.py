"""Branch classification by taken rate and transition rate.

The paper's contribution: bin branches into 11 rate classes by taken
rate (Chang et al.) and by the new transition-rate metric, combine the
two into joint classes, and study predictor behaviour per class.
"""

from .classes import (
    NUM_CLASSES,
    JointClass,
    class_bounds,
    class_label,
    joint_class,
    rate_class,
    rate_classes,
)
from .profile import BranchProfile, ProfileTable
from .dynamic import DynamicClassifier
from .window import (
    BhtWindowClassifier,
    window_joint_class,
    window_taken_rate,
    window_transition_rate,
)

__all__ = [
    "NUM_CLASSES",
    "rate_class",
    "rate_classes",
    "class_bounds",
    "class_label",
    "JointClass",
    "joint_class",
    "BranchProfile",
    "ProfileTable",
    "DynamicClassifier",
    "BhtWindowClassifier",
    "window_taken_rate",
    "window_transition_rate",
    "window_joint_class",
]
