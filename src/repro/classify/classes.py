"""The paper's 11-band rate classification.

Both taken rate and transition rate are binned into classes 0–10:

* class 0  — [0 %, 5 %)
* class i (1–9) — [10·i − 5 %, 10·i + 5 %), i.e. 10 %-wide bands
  centred on 10 %, 20 %, …, 90 %
* class 10 — [95 %, 100 %]

This is the only tiling consistent with the paper's description
("11 equal branch classes ... 0-5%, 5-10%, 10-15%, etc.", with class 10
explicitly 95–100 %) — the narrow end bands isolate the near-static
branches exactly as in Chang et al., and class 5 is centred on 50 % so
the joint "5/5" cell is the paper's hard-branch region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ClassificationError

__all__ = [
    "NUM_CLASSES",
    "rate_class",
    "rate_classes",
    "class_bounds",
    "class_label",
    "JointClass",
    "joint_class",
]

#: Number of rate classes (0 through 10).
NUM_CLASSES = 11


def rate_class(rate: float) -> int:
    """Class index (0–10) for a rate in [0, 1]."""
    if not 0.0 <= rate <= 1.0:
        raise ClassificationError(f"rate must be in [0, 1], got {rate}")
    if rate < 0.05:
        return 0
    if rate >= 0.95:
        return 10
    # Bands centred on 0.1 * i with width 0.1: i = round(rate * 10).
    return int(np.floor(rate * 10 + 0.5))


def rate_classes(rates: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rate_class` over an array of rates."""
    rates = np.asarray(rates, dtype=np.float64)
    if rates.size and (rates.min() < 0.0 or rates.max() > 1.0):
        raise ClassificationError("rates must be in [0, 1]")
    classes = np.floor(rates * 10 + 0.5).astype(np.int64)
    classes[rates < 0.05] = 0
    classes[rates >= 0.95] = 10
    return classes


def class_bounds(cls: int) -> tuple[float, float]:
    """Half-open [low, high) rate bounds of a class (class 10 closed)."""
    _check_class(cls)
    if cls == 0:
        return (0.0, 0.05)
    if cls == 10:
        return (0.95, 1.0)
    return (cls / 10 - 0.05, cls / 10 + 0.05)


def class_label(cls: int) -> str:
    """Human-readable percent-range label, e.g. ``"45-55%"``."""
    low, high = class_bounds(cls)
    return f"{low * 100:g}-{high * 100:g}%"


def _check_class(cls: int) -> None:
    if not 0 <= cls < NUM_CLASSES:
        raise ClassificationError(f"class must be in [0, {NUM_CLASSES - 1}], got {cls}")


@dataclass(frozen=True, slots=True)
class JointClass:
    """A (taken-rate class, transition-rate class) pair.

    The paper's Table 2 and Figures 13/14 are indexed by these pairs;
    the ``(5, 5)`` cell is the hard-to-predict region.
    """

    taken: int
    transition: int

    def __post_init__(self) -> None:
        _check_class(self.taken)
        _check_class(self.transition)

    @property
    def is_hard(self) -> bool:
        """True for the paper's 5/5 (near-50 % taken and transition) class."""
        return self.taken == 5 and self.transition == 5

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.taken}/{self.transition}"


def joint_class(taken_rate: float, transition_rate: float) -> JointClass:
    """Joint class of a branch from its two rates."""
    return JointClass(
        taken=rate_class(taken_rate), transition=rate_class(transition_rate)
    )
