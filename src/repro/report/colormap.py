"""ASCII gray-scale colormaps.

The paper's Figures 5–8 and 13–14 are gray-scale colormaps of miss
rate over (class × history length) or (class × class) grids; this
module renders the same data with density characters, dark = high miss
rate, matching the paper's visual convention.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ascii_colormap", "SHADES"]

#: Light-to-dark character ramp.
SHADES = " .:-=+*#%@"


def ascii_colormap(
    matrix: np.ndarray,
    *,
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    title: str = "",
    row_axis: str = "",
    col_axis: str = "",
    vmin: float = 0.0,
    vmax: float | None = None,
    cell_width: int = 2,
) -> str:
    """Render a matrix as a shaded character grid with a legend.

    Cells with no data (NaN) render as ``··``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError("colormap input must be 2-D")
    rows, cols = matrix.shape
    if len(row_labels) != rows or len(col_labels) != cols:
        raise ConfigurationError("label lengths must match matrix shape")
    if vmax is None:
        finite = matrix[np.isfinite(matrix)]
        vmax = float(finite.max()) if finite.size else 1.0
    if vmax <= vmin:
        vmax = vmin + 1.0

    span = vmax - vmin
    label_width = max(len(str(r)) for r in row_labels)
    lines = []
    if title:
        lines.append(title)
    header = " " * (label_width + 1) + "".join(
        str(c)[:cell_width].rjust(cell_width) for c in col_labels
    )
    if col_axis:
        lines.append(" " * (label_width + 1) + col_axis)
    lines.append(header)
    for r in range(rows):
        cells = []
        for c in range(cols):
            value = matrix[r, c]
            if not np.isfinite(value):
                cells.append("·" * cell_width)
                continue
            level = (min(max(value, vmin), vmax) - vmin) / span
            shade = SHADES[min(int(level * len(SHADES)), len(SHADES) - 1)]
            cells.append(shade * cell_width)
        suffix = f"  {row_axis}" if (row_axis and r == 0) else ""
        lines.append(f"{str(row_labels[r]).rjust(label_width)} " + "".join(cells) + suffix)
    lines.append(
        f"legend: '{SHADES[0]}'={vmin:.2f} .. '{SHADES[-1]}'>={vmax:.2f} (miss rate)"
    )
    return "\n".join(lines)
