"""ASCII line plots.

The paper's Figures 9–12 are per-class miss-rate curves against
history length; this renders equivalent multi-series plots in plain
text, one glyph per series.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ascii_lineplot", "SERIES_GLYPHS"]

#: Per-series marker characters, assigned in insertion order.
SERIES_GLYPHS = "ox*+#@%&"


def ascii_lineplot(
    series: Mapping[str, Sequence[float]],
    *,
    x_values: Sequence[float],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    height: int = 16,
    y_max: float | None = None,
) -> str:
    """Render series (all sharing ``x_values``) as a character plot."""
    if not series:
        raise ConfigurationError("need at least one series")
    if height < 4:
        raise ConfigurationError("height must be >= 4")
    xs = list(x_values)
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}"
            )
    if len(series) > len(SERIES_GLYPHS):
        raise ConfigurationError(f"at most {len(SERIES_GLYPHS)} series supported")

    all_values = np.concatenate([np.asarray(list(ys), dtype=float) for ys in series.values()])
    top = float(y_max) if y_max is not None else float(all_values.max()) * 1.05
    if top <= 0:
        top = 1.0

    columns = len(xs)
    col_stride = 3  # characters per x position
    width = columns * col_stride
    grid = [[" "] * width for _ in range(height)]

    for (name, ys), glyph in zip(series.items(), SERIES_GLYPHS):
        for i, y in enumerate(ys):
            level = min(max(float(y) / top, 0.0), 1.0)
            row = height - 1 - int(round(level * (height - 1)))
            col = i * col_stride + col_stride // 2
            grid[row][col] = glyph

    label_width = 7
    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        y_at_row = top * (height - 1 - r) / (height - 1)
        label = f"{y_at_row:6.3f} " if r % 4 == 0 or r == height - 1 else " " * label_width
        lines.append(label + "|" + "".join(grid[r]))
    lines.append(" " * label_width + "+" + "-" * width)
    x_line = " " * (label_width + 1)
    for x in xs:
        x_line += str(x).rjust(col_stride)[:col_stride]
    lines.append(x_line + ("  " + x_label if x_label else ""))
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), SERIES_GLYPHS)
    )
    lines.append(f"legend: {legend}" + (f"   y: {y_label}" if y_label else ""))
    return "\n".join(lines)
