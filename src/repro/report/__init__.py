"""Plain-text rendering of tables, colormaps and line plots."""

from .table import ascii_table, format_percent, format_rate
from .colormap import SHADES, ascii_colormap
from .lineplot import SERIES_GLYPHS, ascii_lineplot

__all__ = [
    "ascii_table",
    "format_percent",
    "format_rate",
    "ascii_colormap",
    "SHADES",
    "ascii_lineplot",
    "SERIES_GLYPHS",
]
