"""Plain-text table rendering.

Every experiment renders its data as an ASCII table (and the colormap
and line-plot helpers build on the same column layout), so results are
readable in a terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConfigurationError

__all__ = ["ascii_table", "format_percent", "format_rate"]


def format_percent(value: float, *, digits: int = 2) -> str:
    """``0.0872`` → ``"8.72%"``."""
    return f"{value * 100:.{digits}f}%"


def format_rate(value: float, *, digits: int = 3) -> str:
    """A miss rate with fixed decimals, e.g. ``0.153``."""
    return f"{value:.{digits}f}"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    align_first_left: bool = True,
) -> str:
    """Render rows as a boxed, column-aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0 and align_first_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt(list(headers)))
    lines.append(separator)
    lines.extend(fmt(row) for row in str_rows)
    lines.append(separator)
    return "\n".join(lines)
