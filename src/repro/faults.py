"""Deterministic fault injection for chaos-testing the pipeline.

A :class:`FaultPlan` describes *where* and *how often* to inject faults
into the executor/store machinery: worker crashes (``os._exit``), node
delays, store write errors, and object-file corruption.  The plan is
**seeded and stateless** — whether a given injection fires is a pure
function of ``(seed, site, token)``, where the token identifies the
injection point (typically ``"<node key>#a<attempt>"``).  That gives
the properties chaos tests need:

* the same plan injects the same faults on every run, in any process,
  regardless of scheduling order (no shared RNG stream to race on);
* retrying a faulted operation *changes the token* (the attempt number
  is part of it), so a fault with probability < 1 deterministically
  clears after a knowable number of retries.

Plans activate in one of two ways:

* the ``REPRO_FAULTS`` environment variable (inherited by worker
  processes), parsed by :meth:`FaultPlan.from_text` — the grammar is
  ``seed=<int>[,<site>=<prob>[:<arg>][@<match>]]...``, e.g.
  ``seed=7,crash=0.1,delay=0.3:0.02,store-write=0.1@sweep``; or
* explicitly via :func:`activation` (the executor does this around a
  run, and ships the plan to workers so explicit plans work under any
  process start method).

Sites (see ``docs/FAULTS.md`` for the full grammar):

``crash``
    the process calls ``os._exit(CRASH_EXIT_CODE)`` — a worker dies
    mid-task (pool runs) or the whole run is killed (inline runs).
``delay``
    ``time.sleep(arg)`` before the node computes (default 0.05 s);
    with a per-node timeout this is how hung nodes are simulated.
``store-write``
    :meth:`ArtifactStore.put` raises :class:`InjectedFault` (an
    ``OSError``) instead of writing the object file.
``corrupt``
    the object file is deterministically garbled *after* a successful
    write, so a later read sees torn-write damage.

This module never fires unless a plan is active: every hook in the
pipeline is a no-op in production runs.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from .errors import ConfigurationError

__all__ = [
    "CRASH_EXIT_CODE",
    "SITES",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "activation",
    "active_plan",
    "inject",
    "inject_corruption",
    "stable_unit",
]

#: Exit status used by ``crash`` injections, distinctive enough to
#: assert on in tests (and never confused with pytest/python statuses).
CRASH_EXIT_CODE = 47

#: The injection sites the pipeline exposes.
SITES = ("crash", "delay", "store-write", "corrupt")

_ENV_VAR = "REPRO_FAULTS"


class InjectedFault(OSError):
    """The error raised by ``store-write`` injections.

    Deliberately an :class:`OSError` subclass: the executor must
    classify it exactly as it would a real disk fault (``STORE_IO``),
    which is the point of injecting it.
    """


def stable_unit(*parts: object) -> float:
    """A deterministic uniform in ``[0, 1)`` from the given parts.

    Pure function of its inputs (sha256-based), identical across
    processes and platforms — the randomness primitive behind both
    fault decisions and retry-backoff jitter.
    """
    text = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire at ``site`` with ``probability``.

    ``arg`` carries a site-specific parameter (the ``delay`` duration
    in seconds); ``match`` restricts the rule to tokens containing the
    substring (e.g. ``@sweep`` targets sweep nodes only).
    """

    site: str
    probability: float
    arg: float | None = None
    match: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: {', '.join(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability!r}"
            )

    def to_text(self) -> str:
        text = f"{self.site}={self.probability:g}"
        if self.arg is not None:
            text += f":{self.arg:g}"
        if self.match:
            text += f"@{self.match}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, stateless set of :class:`FaultRule`\\ s."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    @classmethod
    def from_text(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see the module docstring)."""
        seed = 0
        rules: list[FaultRule] = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ConfigurationError(
                    f"bad fault token {token!r} (expected name=value); full text: {text!r}"
                )
            name, value = token.split("=", 1)
            name = name.strip()
            if name == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ConfigurationError(f"bad fault seed {value!r}") from None
                continue
            value, _, match = value.partition("@")
            prob_text, _, arg_text = value.partition(":")
            try:
                probability = float(prob_text)
                arg = float(arg_text) if arg_text else None
            except ValueError:
                raise ConfigurationError(
                    f"bad fault rule {token!r} (expected site=prob[:arg][@match])"
                ) from None
            rules.append(FaultRule(name, probability, arg=arg, match=match.strip()))
        return cls(seed=seed, rules=tuple(rules))

    def to_text(self) -> str:
        """The plan back in ``REPRO_FAULTS`` grammar (round-trips)."""
        return ",".join([f"seed={self.seed}"] + [rule.to_text() for rule in self.rules])

    def rule_for(self, site: str, token: str) -> FaultRule | None:
        """The first rule that fires at ``site`` for ``token``, if any.

        Deterministic: the decision hashes ``(seed, site, token)`` plus
        the rule's position, so two rules at one site draw independent
        coins but every process draws the same ones.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site or rule.match not in token:
                continue
            if stable_unit(self.seed, site, token, index) < rule.probability:
                return rule
        return None


# -- activation ----------------------------------------------------------

_active: FaultPlan | None = None
_env_cache: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The explicitly activated plan, else one parsed from ``REPRO_FAULTS``."""
    if _active is not None:
        return _active
    text = os.environ.get(_ENV_VAR)
    if not text:
        return None
    global _env_cache  # repro: noqa[W302] -- per-process parse cache by design
    if _env_cache is None or _env_cache[0] != text:
        _env_cache = (text, FaultPlan.from_text(text))
    return _env_cache[1]


@contextmanager
def activation(plan: FaultPlan | None):
    """Activate ``plan`` for the duration of the block (``None`` = no-op).

    Explicit activation shadows the environment; the executor wraps
    each run — and each worker-side task — in one of these so a plan
    passed as an object behaves identically to one set via env.
    """
    global _active  # repro: noqa[W302] -- activation is deliberately per-process
    if plan is None:
        yield
        return
    previous = _active
    _active = plan
    try:
        yield
    finally:
        _active = previous


# -- injection sites ------------------------------------------------------


def inject(site: str, token: str) -> None:
    """Fire ``site`` for ``token`` if the active plan says so.

    No-op without an active plan.  ``crash`` exits the process with
    :data:`CRASH_EXIT_CODE`; ``delay`` sleeps; ``store-write`` raises
    :class:`InjectedFault`.  (``corrupt`` needs the written file — see
    :func:`inject_corruption`.)
    """
    plan = active_plan()
    if plan is None:
        return
    rule = plan.rule_for(site, token)
    if rule is None:
        return
    if site == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif site == "delay":
        time.sleep(rule.arg if rule.arg is not None else 0.05)
    elif site == "store-write":
        raise InjectedFault(f"injected store write fault at {token!r}")


def inject_corruption(path: Path, token: str) -> bool:
    """Deterministically garble ``path`` if a ``corrupt`` rule fires.

    Half the firings truncate the file, half overwrite a span in the
    middle with hash-derived garbage — both damage modes the store's
    read-side validation must absorb.  Returns whether it fired.
    """
    plan = active_plan()
    if plan is None:
        return False
    rule = plan.rule_for("corrupt", token)
    if rule is None:
        return False
    size = path.stat().st_size
    mode = stable_unit(plan.seed, "corrupt-mode", token)
    if mode < 0.5 or size < 32:
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
    else:
        garbage = hashlib.sha256(token.encode("utf-8")).digest()
        with open(path, "r+b") as fh:
            fh.seek(size // 3)
            fh.write(garbage)
    return True
