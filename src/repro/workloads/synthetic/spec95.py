"""SPECint95 benchmark analogues.

The paper's evaluation runs the eight SPECint95 benchmarks (34 input
sets, Table 1) to completion under a modified ``sim-bpred``.  SPEC95
binaries and reference inputs are proprietary and the full runs are
billions of branches, so this module builds *calibrated synthetic
analogues*: each benchmark is a :class:`BranchPopulation` whose joint
taken/transition-rate distribution is the paper's own Table 2 matrix,
tilted per benchmark toward its known character (vortex/m88ksim very
biased and easy, go hard, ijpeg loop-heavy with hard branches
clustered back-to-back, gcc broad with many static branches), at a
reduced dynamic scale.

What this preserves: the class-distribution shapes of Figures 1/2 and
Table 2, the per-class predictability structure that drives Figures
3–14, and the per-benchmark hard-branch spacing behaviour of Figure 15.
What it does not preserve: absolute miss rates of the authors' exact
binaries (see DESIGN.md, substitutions, and EXPERIMENTS.md for
paper-vs-measured numbers).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ...classify.classes import NUM_CLASSES, class_bounds
from ...errors import ConfigurationError
from ...trace.stream import Trace
from .population import BranchPopulation, population_from_joint

__all__ = [
    "TABLE2_JOINT_PERCENT",
    "BENCHMARK_NAMES",
    "SPEC95_INPUTS",
    "InputSet",
    "BenchmarkCharacter",
    "BENCHMARK_CHARACTERS",
    "benchmark_joint_matrix",
    "make_population",
    "input_trace",
    "suite_input_sets",
    "suite_traces",
    "scaled_length",
]

#: The paper's Table 2: percentage of dynamic branches per joint class.
#: Rows are transition-rate classes 0-10, columns taken-rate classes 0-10.
TABLE2_JOINT_PERCENT = np.array(
    [
        [26.11, 0.71, 0.01, 0.05, 0.04, 0.02, 0.07, 0.32, 0.69, 0.05, 32.73],
        [0.46, 2.12, 0.09, 0.09, 0.16, 0.06, 0.07, 0.03, 0.15, 4.00, 3.59],
        [0.00, 2.27, 0.45, 0.11, 0.03, 0.04, 0.99, 0.06, 0.57, 2.97, 0.00],
        [0.00, 0.10, 1.01, 0.28, 0.13, 0.20, 0.24, 0.30, 0.87, 0.05, 0.00],
        [0.00, 0.00, 0.36, 0.70, 1.08, 0.30, 1.72, 0.52, 0.60, 0.00, 0.00],
        [0.00, 0.00, 0.01, 1.77, 0.72, 1.34, 0.16, 0.92, 0.56, 0.00, 0.00],
        [0.00, 0.00, 0.00, 0.71, 1.59, 0.45, 0.89, 1.21, 0.00, 0.00, 0.00],
        [0.00, 0.00, 0.00, 0.03, 0.13, 0.53, 0.11, 0.40, 0.00, 0.00, 0.00],
        [0.00, 0.00, 0.00, 0.00, 0.21, 0.06, 0.02, 0.00, 0.00, 0.00, 0.00],
        [0.00, 0.00, 0.00, 0.00, 0.03, 0.07, 0.03, 0.00, 0.00, 0.00, 0.00],
        [0.00, 0.00, 0.00, 0.00, 0.00, 0.44, 0.00, 0.00, 0.00, 0.00, 0.00],
    ]
)

BENCHMARK_NAMES = (
    "compress",
    "gcc",
    "go",
    "ijpeg",
    "li",
    "m88ksim",
    "perl",
    "vortex",
)


@dataclass(frozen=True, slots=True)
class InputSet:
    """One (benchmark, input) pair from the paper's Table 1."""

    benchmark: str
    input_name: str
    paper_dynamic_branches: int

    @property
    def label(self) -> str:
        """Stable identifier, e.g. ``"gcc/cccp.i"``."""
        return f"{self.benchmark}/{self.input_name}"

    @property
    def seed(self) -> int:
        """Deterministic per-input seed (CRC of the label)."""
        return zlib.crc32(self.label.encode())


#: The paper's Table 1 — all 34 benchmark/input pairs with their
#: dynamic conditional branch counts.
SPEC95_INPUTS: tuple[InputSet, ...] = tuple(
    InputSet(bench, name, count)
    for bench, name, count in [
        ("compress", "bigtest.in", 5_641_834_221),
        ("gcc", "amptjp.i", 194_467_495),
        ("gcc", "c-decl-s.i", 194_487_972),
        ("gcc", "cccp.i", 190_138_561),
        ("gcc", "cp-decl.i", 217_997_360),
        ("gcc", "dbxout.i", 24_944_893),
        ("gcc", "emit-rtl.i", 25_378_207),
        ("gcc", "explow.i", 36_513_202),
        ("gcc", "expr.i", 153_982_215),
        ("gcc", "gcc.i", 30_394_247),
        ("gcc", "genoutput.i", 12_971_324),
        ("gcc", "genrecog.i", 18_202_207),
        ("gcc", "insn-emit.i", 20_774_453),
        ("gcc", "insn-recog.i", 85_446_679),
        ("gcc", "integrate.i", 33_397_714),
        ("gcc", "jump.i", 23_141_650),
        ("gcc", "print-tree.i", 25_996_412),
        ("gcc", "protoize.i", 76_482_161),
        ("gcc", "recog.i", 43_591_736),
        ("gcc", "regclass.i", 18_259_839),
        ("gcc", "reload1.i", 138_706_109),
        ("gcc", "stmt-protoize.i", 153_772_060),
        ("gcc", "stmt.i", 82_470_825),
        ("gcc", "toplev.i", 65_824_567),
        ("gcc", "varasm.i", 37_656_353),
        ("go", "9stone21.in", 3_838_574_925),
        ("ijpeg", "penguin.ppm", 1_548_835_517),
        ("ijpeg", "specmun.ppm", 1_392_275_287),
        ("ijpeg", "vigo.ppm", 1_627_642_253),
        ("li", "ref-lsp", 8_493_447_845),
        ("m88ksim", "ctl.lit", 9_086_543_174),
        ("perl", "primes.pl", 1_738_514_158),
        ("perl", "scrabbl.pl", 3_150_939_854),
        ("vortex", "vortex.lit", 9_897_766_691),
    ]
)


@dataclass(frozen=True, slots=True)
class BenchmarkCharacter:
    """Per-benchmark tilt applied to the Table 2 base distribution.

    ``hardness_tilt`` > 0 shifts dynamic weight toward the hard centre
    of the joint matrix (go), < 0 toward the easy biased corners
    (vortex, m88ksim).  ``branches_per_cell`` scales the static branch
    count (gcc has far more static branches than compress).
    ``hard_adjacency`` clusters hard-branch occurrences back to back
    (ijpeg's signature in Figure 15).  ``structured_damping`` controls
    how much of each cell is random rather than learnable pattern.
    """

    hardness_tilt: float
    branches_per_cell: int
    hard_adjacency: float
    structured_damping: float


BENCHMARK_CHARACTERS: dict[str, BenchmarkCharacter] = {
    "compress": BenchmarkCharacter(0.6, 2, 0.10, 0.92),
    "gcc": BenchmarkCharacter(0.0, 8, 0.05, 0.85),
    "go": BenchmarkCharacter(1.2, 5, 0.15, 0.95),
    "ijpeg": BenchmarkCharacter(0.2, 3, 0.90, 0.80),
    "li": BenchmarkCharacter(-0.8, 3, 0.05, 0.80),
    "m88ksim": BenchmarkCharacter(-1.2, 3, 0.05, 0.75),
    "perl": BenchmarkCharacter(-0.4, 4, 0.05, 0.80),
    "vortex": BenchmarkCharacter(-1.5, 4, 0.05, 0.70),
}


def _cell_hardness() -> np.ndarray:
    """(11, 11) matrix of joint-cell 'hardness' in [0, 1]."""
    hardness = np.zeros((NUM_CLASSES, NUM_CLASSES))
    for x_cls in range(NUM_CLASSES):
        x_lo, x_hi = class_bounds(x_cls)
        x_mid = (x_lo + x_hi) / 2
        for t_cls in range(NUM_CLASSES):
            t_lo, t_hi = class_bounds(t_cls)
            t_mid = (t_lo + t_hi) / 2
            hardness[x_cls, t_cls] = (1 - abs(2 * t_mid - 1)) * (1 - abs(2 * x_mid - 1))
    return hardness


def benchmark_joint_matrix(benchmark: str) -> np.ndarray:
    """The Table 2 base matrix tilted for one benchmark (normalized)."""
    character = _character(benchmark)
    tilted = TABLE2_JOINT_PERCENT * np.exp(character.hardness_tilt * _cell_hardness())
    return tilted / tilted.sum()


def make_population(input_set: InputSet) -> BranchPopulation:
    """The synthetic branch population for one Table 1 input set."""
    character = _character(input_set.benchmark)
    return population_from_joint(
        benchmark_joint_matrix(input_set.benchmark),
        seed=input_set.seed,
        branches_per_cell=character.branches_per_cell,
        structured_damping=character.structured_damping,
        hard_adjacency=character.hard_adjacency,
        name=input_set.label,
    )


def scaled_length(
    input_set: InputSet,
    *,
    scale: float = 1.0,
    divisor: int = 20_000,
    minimum: int = 40_000,
    maximum: int = 250_000,
) -> int:
    """Reduced-scale trace length for an input set.

    The paper runs each input to completion (Table 1 counts); we divide
    by ``divisor`` and clamp, preserving the relative weighting of
    benchmarks in suite-level aggregates while staying laptop-sized.
    """
    n = int(np.clip(input_set.paper_dynamic_branches // divisor, minimum, maximum))
    return max(1, int(n * scale))


def input_trace(input_set: InputSet, *, scale: float = 1.0) -> Trace:
    """Generate the reduced-scale trace for one input set."""
    population = make_population(input_set)
    return population.generate(scaled_length(input_set, scale=scale), name=input_set.label)


def suite_input_sets(inputs: str = "primary") -> list[InputSet]:
    """The input sets making up a suite configuration, in suite order.

    ``"primary"`` selects the largest input set per benchmark (8 sets,
    the default experiment configuration); ``"all"`` selects all 34
    Table 1 input sets.  The experiment pipeline planner uses this to
    enumerate trace artifacts (by :attr:`InputSet.label`) without
    generating any trace data.
    """
    if inputs == "all":
        return list(SPEC95_INPUTS)
    if inputs == "primary":
        best: dict[str, InputSet] = {}
        for input_set in SPEC95_INPUTS:
            current = best.get(input_set.benchmark)
            if current is None or input_set.paper_dynamic_branches > current.paper_dynamic_branches:
                best[input_set.benchmark] = input_set
        return [best[name] for name in BENCHMARK_NAMES]
    raise ConfigurationError(f"inputs must be 'primary' or 'all', got {inputs!r}")


def suite_traces(*, inputs: str = "primary", scale: float = 1.0) -> list[Trace]:
    """Traces for the whole suite.

    Parameters
    ----------
    inputs:
        ``"primary"`` — the largest input set per benchmark (8 traces,
        the default experiment configuration); ``"all"`` — all 34
        Table 1 input sets.
    scale:
        Length multiplier applied after the Table 1 scaling.
    """
    return [
        input_trace(input_set, scale=scale) for input_set in suite_input_sets(inputs)
    ]


def _character(benchmark: str) -> BenchmarkCharacter:
    try:
        return BENCHMARK_CHARACTERS[benchmark]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {benchmark!r}; expected one of {BENCHMARK_NAMES}"
        ) from None
