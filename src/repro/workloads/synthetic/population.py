"""Populations of synthetic branches and trace generation.

A :class:`BranchPopulation` is a set of static branches, each with an
outcome model and a relative dynamic weight.  Trace generation lays the
branches out on a repeating *schedule* (a shuffled cycle in which each
branch appears ``weight`` times), mimicking the loop-structured
interleaving of real programs: the global branch stream is periodic in
structure while each branch follows its own outcome process.  That
periodicity is what gives global-history predictors realistic
cross-branch correlation to exploit.

:func:`population_from_joint` builds a population whose
dynamic-weighted joint taken/transition distribution matches a target
11×11 matrix — the calibration mechanism that reproduces the paper's
Table 2 from published numbers rather than from unavailable SPEC95
binaries (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...classify.classes import NUM_CLASSES, class_bounds
from ...errors import ConfigurationError
from ...trace.stream import Trace
from .models import BranchModel, MarkovModel, PatternModel, pattern_for_rates

__all__ = ["BranchSpec", "BranchPopulation", "population_from_joint"]


@dataclass(frozen=True, slots=True)
class BranchSpec:
    """One static branch in a population.

    A branch with ``follows`` set is a *correlated follower*: every one
    of its occurrences is scheduled immediately after an occurrence of
    the leader branch and copies the leader's outcome.  This is the
    cross-branch correlation (Evers et al.) that global-history
    predictors exploit and per-address predictors cannot; followers
    must have the same schedule weight as their leader.
    """

    pc: int
    model: BranchModel
    weight: int  # occurrences per schedule cycle
    hard: bool = False  # True for 5/5-cell branches (used for clustering)
    follows: int | None = None  # leader pc for correlated branches

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ConfigurationError("pc must be non-negative")
        if self.weight < 1:
            raise ConfigurationError("weight must be >= 1")
        if self.follows is not None and self.follows == self.pc:
            raise ConfigurationError("a branch cannot follow itself")


class BranchPopulation:
    """A set of branch specs plus the schedule that interleaves them.

    Parameters
    ----------
    specs:
        The static branches.
    seed:
        Seed for the schedule shuffle and all outcome models.
    hard_adjacency:
        Fraction of the hard (5/5) branches' schedule slots that are
        laid out contiguously.  Models programs (like the paper's
        ijpeg) whose hard branches occur back to back — the knob behind
        Figure 15's per-benchmark distance distributions.
    """

    def __init__(
        self,
        specs: list[BranchSpec],
        *,
        seed: int = 0,
        hard_adjacency: float = 0.0,
        name: str = "",
    ) -> None:
        if not specs:
            raise ConfigurationError("population needs at least one branch")
        if not 0.0 <= hard_adjacency <= 1.0:
            raise ConfigurationError("hard_adjacency must be in [0, 1]")
        pcs = [s.pc for s in specs]
        if len(set(pcs)) != len(pcs):
            raise ConfigurationError("branch pcs must be unique")
        self.specs = list(specs)
        self._index_of_pc = {s.pc: i for i, s in enumerate(self.specs)}
        self._validate_followers()
        self.seed = seed
        self.hard_adjacency = hard_adjacency
        self.name = name
        self._schedule = self._build_schedule()

    def _validate_followers(self) -> None:
        leaders_in_use: set[int] = set()
        for spec in self.specs:
            if spec.follows is None:
                continue
            leader_index = self._index_of_pc.get(spec.follows)
            if leader_index is None:
                raise ConfigurationError(
                    f"branch {spec.pc:#x} follows unknown pc {spec.follows:#x}"
                )
            leader = self.specs[leader_index]
            if leader.follows is not None:
                raise ConfigurationError("follower chains are not supported")
            if leader.pc in leaders_in_use:
                raise ConfigurationError(
                    f"leader {leader.pc:#x} already has a follower"
                )
            if leader.weight != spec.weight:
                raise ConfigurationError(
                    "follower weight must equal its leader's weight"
                )
            leaders_in_use.add(leader.pc)

    @property
    def num_static(self) -> int:
        """Number of static branches."""
        return len(self.specs)

    @property
    def cycle_length(self) -> int:
        """Dynamic branches per schedule cycle."""
        return len(self._schedule)

    def _build_schedule(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        follower_for = {
            self._index_of_pc[s.follows]: i
            for i, s in enumerate(self.specs)
            if s.follows is not None
        }

        # Schedule *units*: a lone branch occurrence, or an atomic
        # (leader, follower) pair so the follower always executes
        # immediately after its leader.
        soft_units: list[tuple[int, ...]] = []
        hard_units: list[tuple[int, ...]] = []
        for i, spec in enumerate(self.specs):
            if spec.follows is not None:
                continue  # emitted inside its leader's pair units
            follower = follower_for.get(i)
            unit = (i,) if follower is None else (i, follower)
            target = hard_units if spec.hard else soft_units
            target.extend([unit] * spec.weight)

        # Split hard units into a clustered portion (kept contiguous)
        # and a scattered portion mixed with everything else.
        rng.shuffle(hard_units)
        num_clustered = int(round(len(hard_units) * self.hard_adjacency))
        clustered = hard_units[:num_clustered]
        scattered = hard_units[num_clustered:] + soft_units
        rng.shuffle(scattered)

        if clustered:
            # Insert the cluster as a contiguous run at a random offset.
            offset = int(rng.integers(len(scattered) + 1))
            units = scattered[:offset] + clustered + scattered[offset:]
        else:
            units = scattered
        return np.asarray([i for unit in units for i in unit], dtype=np.int64)

    def generate(self, n: int, *, name: str | None = None) -> Trace:
        """A trace of ``n`` dynamic branches following the schedule."""
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if n == 0:
            return Trace.empty(name=name or self.name)

        reps = n // len(self._schedule) + 1
        slots = np.tile(self._schedule, reps)[:n]

        pcs = np.asarray([s.pc for s in self.specs], dtype=np.int64)[slots]
        outcomes = np.zeros(n, dtype=np.uint8)

        root = np.random.default_rng(self.seed + 0x9E3779B9)
        counts = np.bincount(slots, minlength=len(self.specs))
        for i, spec in enumerate(self.specs):
            child = np.random.default_rng(root.integers(2**63))
            if counts[i] == 0 or spec.follows is not None:
                continue
            stream = spec.model.generate(int(counts[i]), child)
            outcomes[slots == i] = stream

        # Correlated followers copy the outcome of the occurrence right
        # before them — their leader, by schedule construction.
        for i, spec in enumerate(self.specs):
            if spec.follows is None or counts[i] == 0:
                continue
            positions = np.flatnonzero(slots == i)
            outcomes[positions] = outcomes[positions - 1]
        return Trace(pcs, outcomes, name=name or self.name)


def population_from_joint(
    joint_weights: np.ndarray,
    *,
    seed: int = 0,
    pc_base: int = 0x1000,
    branches_per_cell: int = 3,
    max_branches_per_cell: int = 12,
    structured_damping: float = 0.85,
    hard_adjacency: float = 0.0,
    correlated_fraction: float = 0.35,
    cycle_target: int = 4096,
    name: str = "",
) -> BranchPopulation:
    """Population whose joint class distribution matches ``joint_weights``.

    Parameters
    ----------
    joint_weights:
        (11, 11) nonnegative matrix — rows transition classes, columns
        taken classes (the paper's Table 2 layout).  Normalized
        internally.
    seed:
        Master seed for branch parameters, schedule, and outcomes.
    branches_per_cell, max_branches_per_cell:
        Static branches allocated per nonzero cell: heavier cells get
        more branches (up to the cap) so no single branch dominates.
    structured_damping:
        How strongly the "hardness" of a cell (distance of both rates
        from the 0/1 extremes) suppresses the deterministic-pattern
        component in favour of random Markov behaviour.  1.0 makes the
        central 5/5 cell purely random, 0.0 makes everything a
        learnable pattern.
    hard_adjacency:
        Passed through to :class:`BranchPopulation` (hard-branch
        clustering in the schedule).
    correlated_fraction:
        Probability that a (non-hard) cell branch becomes a correlated
        follower of another branch in the same cell — outcome copied
        from the leader, scheduled immediately after it.  This supplies
        the cross-branch correlation global-history predictors exploit
        in real programs; the hard 5/5 cell is never correlated.
    cycle_target:
        Approximate schedule cycle length; cell weights are quantized
        to integer slot counts against this resolution.
    """
    weights = np.asarray(joint_weights, dtype=np.float64)
    if weights.shape != (NUM_CLASSES, NUM_CLASSES):
        raise ConfigurationError(f"joint_weights must be 11x11, got {weights.shape}")
    if weights.min() < 0:
        raise ConfigurationError("joint_weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ConfigurationError("joint_weights must contain positive mass")
    weights = weights / total

    rng = np.random.default_rng(seed)
    specs: list[BranchSpec] = []
    next_pc = pc_base

    for x_cls in range(NUM_CLASSES):
        for t_cls in range(NUM_CLASSES):
            cell_weight = weights[x_cls, t_cls]
            if cell_weight <= 0:
                continue
            slots = max(1, int(round(cell_weight * cycle_target)))
            # Heavier cells get more static branches, but every branch
            # keeps at least ~6 slots per cycle so it executes often
            # enough for predictors to train out of cold start.
            num_branches = int(np.clip(
                round(branches_per_cell * (1 + 3 * cell_weight * NUM_CLASSES)),
                1,
                min(max_branches_per_cell, max(1, slots // 6)),
            ))
            per_branch = _split(slots, num_branches)
            hard = t_cls == 5 and x_cls == 5

            previous: BranchSpec | None = None
            for weight in per_branch:
                taken_rate, transition_rate = _jittered_rates(t_cls, x_cls, rng)
                model = _model_for(
                    taken_rate, transition_rate, rng, structured_damping
                )
                follows = None
                if (
                    not hard
                    and previous is not None
                    and previous.follows is None
                    and rng.random() < correlated_fraction
                ):
                    # Correlated pair: same weight as the leader so the
                    # schedule can emit them as an atomic unit.
                    follows = previous.pc
                    weight = previous.weight
                spec = BranchSpec(
                    pc=next_pc, model=model, weight=weight, hard=hard, follows=follows
                )
                specs.append(spec)
                # A follower cannot immediately lead another follower.
                previous = None if follows is not None else spec
                next_pc += 4
    return BranchPopulation(
        specs, seed=seed, hard_adjacency=hard_adjacency, name=name
    )


def _jittered_rates(t_cls: int, x_cls: int, rng: np.random.Generator) -> tuple[float, float]:
    """Random rates inside the cell's bands, respecting feasibility.

    The transition rate of a branch with taken rate p is bounded by
    2·min(p, 1−p) (every minority outcome contributes at most two
    direction changes).  Table 2's populated cells all admit feasible
    (p, x) pairs, but only in a corner of the cell for boundary cells
    like taken class 10 / transition class 1 — so the taken rate is
    nudged toward 0.5 within its band until the transition band is
    reachable, then the transition rate is drawn from the feasible part
    of its band.
    """
    t_lo, t_hi = class_bounds(t_cls)
    x_lo, x_hi = class_bounds(x_cls)
    margin_t = 0.2 * (t_hi - t_lo)
    taken = float(rng.uniform(t_lo + margin_t, t_hi - margin_t))

    # Ensure the *low edge* of the transition band is feasible for this
    # taken rate; otherwise pull the taken rate toward 0.5 just enough.
    if x_lo > 0:
        needed_minority = x_lo / 2 + 0.005
        if taken > 1 - needed_minority:
            taken = max(t_lo, min(1 - needed_minority, t_hi - 1e-6))
        elif taken < needed_minority:
            taken = min(t_hi - 1e-6, max(needed_minority, t_lo))

    feasible_max = 2 * min(taken, 1 - taken)
    hi = min(x_hi - 0.1 * (x_hi - x_lo), feasible_max)
    lo = min(x_lo + 0.1 * (x_hi - x_lo), hi)
    trans = float(rng.uniform(lo, hi)) if hi > lo else float(hi)
    trans = max(0.0, min(trans, 1.0))
    return taken, trans


def _model_for(
    taken_rate: float,
    transition_rate: float,
    rng: np.random.Generator,
    structured_damping: float,
) -> BranchModel:
    """Pattern (learnable) or Markov (random) model for the target rates."""
    if taken_rate < 0.02 and transition_rate < 0.02:
        return PatternModel([0])
    if taken_rate > 0.98 and transition_rate < 0.02:
        return PatternModel([1])

    hardness = (1 - abs(2 * taken_rate - 1)) * (1 - abs(2 * transition_rate - 1))
    structured_fraction = 1.0 - structured_damping * hardness
    if rng.random() < structured_fraction:
        period = int(rng.choice([20, 40, 60]))
        return pattern_for_rates(taken_rate, transition_rate, period=period)
    return MarkovModel.for_rates(taken_rate, transition_rate)


def _split(total: int, parts: int) -> list[int]:
    base = total // parts
    extra = total % parts
    return [base + (1 if i < extra else 0) for i in range(parts)]
