"""Per-branch outcome models.

Each model generates the outcome stream of one static branch.  The
models span the paper's behaviour space:

* :class:`BiasedModel` — i.i.d. coin flips (data-dependent branches;
  the 5/5 hard class at p = 0.5),
* :class:`PatternModel` — deterministic repeating patterns (learnable
  by two-level predictors given enough history),
* :class:`LoopModel` — loop back-edges (T…TN repeating),
* :class:`AlternatingModel` — the transition-class-10 extreme,
* :class:`MarkovModel` — two-state chains whose taken rate and
  transition rate are *independently* tunable, the workhorse used to
  hit every cell of the paper's Table 2,
* :class:`PhasedModel` — concatenated phases of other models
  (branches whose behaviour changes over the run).

Every model is deterministic given the ``numpy`` generator passed to
:meth:`BranchModel.generate`, so whole workloads are reproducible from
one seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from ...errors import ConfigurationError

__all__ = [
    "BranchModel",
    "BiasedModel",
    "PatternModel",
    "LoopModel",
    "AlternatingModel",
    "MarkovModel",
    "PhasedModel",
    "pattern_for_rates",
]


class BranchModel(ABC):
    """Generator of one branch's outcome stream."""

    @abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` outcomes (uint8, 1 = taken)."""

    def expected_taken_rate(self) -> float:
        """Long-run taken rate this model targets (for calibration tests)."""
        raise NotImplementedError

    def expected_transition_rate(self) -> float:
        """Long-run transition rate this model targets."""
        raise NotImplementedError


class BiasedModel(BranchModel):
    """Independent Bernoulli outcomes with taken probability ``p``."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"bias must be in [0, 1], got {p}")
        self.p = p

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return (rng.random(n) < self.p).astype(np.uint8)

    def expected_taken_rate(self) -> float:
        return self.p

    def expected_transition_rate(self) -> float:
        return 2 * self.p * (1 - self.p)


class PatternModel(BranchModel):
    """A fixed binary pattern repeated forever (optionally phase-shifted)."""

    def __init__(self, pattern: Sequence[int], *, random_phase: bool = True) -> None:
        arr = np.asarray(list(pattern), dtype=np.uint8)
        if arr.ndim != 1 or len(arr) == 0:
            raise ConfigurationError("pattern must be a non-empty 1-D sequence")
        if arr.max(initial=0) > 1:
            raise ConfigurationError("pattern entries must be 0 or 1")
        self.pattern = arr
        self.random_phase = random_phase

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        period = len(self.pattern)
        phase = int(rng.integers(period)) if self.random_phase else 0
        reps = (n + phase) // period + 1
        return np.tile(self.pattern, reps)[phase : phase + n]

    def expected_taken_rate(self) -> float:
        return float(self.pattern.mean())

    def expected_transition_rate(self) -> float:
        p = self.pattern
        # Transitions around the cycle, including the wrap-around edge.
        return float((p != np.roll(p, 1)).mean())


class LoopModel(PatternModel):
    """A loop back-edge: taken ``body - 1`` times, then not-taken once."""

    def __init__(self, body: int, *, random_phase: bool = True) -> None:
        if body < 2:
            raise ConfigurationError(f"loop body must be >= 2, got {body}")
        super().__init__([1] * (body - 1) + [0], random_phase=random_phase)
        self.body = body


class AlternatingModel(PatternModel):
    """Strict T/N alternation — the transition-rate-1.0 extreme."""

    def __init__(self) -> None:
        super().__init__([1, 0])


class MarkovModel(BranchModel):
    """Two-state Markov chain over {taken, not-taken}.

    Parameters
    ----------
    p_tn:
        P(next = not-taken | current = taken).
    p_nt:
        P(next = taken | current = not-taken).

    The stationary taken rate is ``p_nt / (p_tn + p_nt)`` and the
    stationary transition rate ``2 p_tn p_nt / (p_tn + p_nt)``; use
    :meth:`for_rates` to solve the inverse problem.
    """

    def __init__(self, p_tn: float, p_nt: float) -> None:
        for name, p in (("p_tn", p_tn), ("p_nt", p_nt)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if p_tn == 0.0 and p_nt == 0.0:
            raise ConfigurationError("absorbing chain: p_tn and p_nt cannot both be 0")
        self.p_tn = p_tn
        self.p_nt = p_nt

    @classmethod
    def for_rates(cls, taken_rate: float, transition_rate: float) -> "MarkovModel":
        """Chain whose stationary taken/transition rates hit the targets.

        Solves ``p_tn = x / (2 p)`` and ``p_nt = x / (2 (1 - p))``,
        clamping to the feasible region ``x <= 2 min(p, 1-p)`` (the same
        feasibility bound that shapes the paper's Table 2 arc).
        """
        p = min(max(taken_rate, 1e-3), 1 - 1e-3)
        x = max(transition_rate, 1e-4)
        x = min(x, 2 * min(p, 1 - p))  # clamp to feasibility
        return cls(p_tn=min(x / (2 * p), 1.0), p_nt=min(x / (2 * (1 - p)), 1.0))

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        # Run-length construction: state dwell times are geometric, so
        # the chain is generated as alternating runs without a Python
        # loop per step.
        p_taken = self.p_nt / (self.p_tn + self.p_nt)
        state = 1 if rng.random() < p_taken else 0
        out = np.empty(0, dtype=np.uint8)
        # Expected run length bounds the number of runs we need; draw in
        # slabs until the stream is long enough.
        while len(out) < n:
            remaining = n - len(out)
            leave = self.p_tn if state else self.p_nt
            if leave <= 0.0:
                # Absorbed: this state never exits; fill the rest.
                out = np.concatenate([out, np.full(remaining, state, dtype=np.uint8)])
                break
            mean_run = 1.0 / leave
            num_runs = max(8, int(remaining / mean_run) + 8)
            # Alternating runs starting from `state`.
            lens_a = rng.geometric(self.p_tn if state else self.p_nt, size=num_runs)
            lens_b = rng.geometric(self.p_nt if state else self.p_tn, size=num_runs)
            lengths = np.empty(2 * num_runs, dtype=np.int64)
            lengths[0::2] = lens_a
            lengths[1::2] = lens_b
            values = np.empty(2 * num_runs, dtype=np.uint8)
            values[0::2] = state
            values[1::2] = 1 - state
            chunk = np.repeat(values, lengths)
            out = np.concatenate([out, chunk])
            # Continue from the opposite of the last *completed* run's
            # state only if we need another slab; parity is preserved
            # because slabs always contain an even number of runs.
        return out[:n]

    def expected_taken_rate(self) -> float:
        return self.p_nt / (self.p_tn + self.p_nt)

    def expected_transition_rate(self) -> float:
        return 2 * self.p_tn * self.p_nt / (self.p_tn + self.p_nt)


class PhasedModel(BranchModel):
    """Concatenated phases, each generated by a sub-model.

    Models branches whose behaviour depends on program phase (e.g. an
    input-scanning loop that flips polarity between file sections).
    """

    def __init__(self, phases: Sequence[tuple[BranchModel, float]]) -> None:
        if not phases:
            raise ConfigurationError("PhasedModel needs at least one phase")
        total = sum(weight for _, weight in phases)
        if total <= 0:
            raise ConfigurationError("phase weights must sum to a positive value")
        self.phases = [(model, weight / total) for model, weight in phases]

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        chunks = []
        produced = 0
        for i, (model, fraction) in enumerate(self.phases):
            length = n - produced if i == len(self.phases) - 1 else int(round(n * fraction))
            length = min(length, n - produced)
            chunks.append(model.generate(length, rng))
            produced += length
        return np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.uint8)

    def expected_taken_rate(self) -> float:
        return sum(m.expected_taken_rate() * w for m, w in self.phases)

    def expected_transition_rate(self) -> float:
        # Phase boundaries contribute O(1/n); ignore them.
        return sum(m.expected_transition_rate() * w for m, w in self.phases)


def pattern_for_rates(
    taken_rate: float, transition_rate: float, *, period: int = 40
) -> PatternModel:
    """A deterministic repeating pattern hitting target rates.

    Builds a cycle of alternating taken/not-taken runs whose run count
    matches the transition rate and whose total taken count matches the
    taken rate.  Unlike :class:`MarkovModel`, the result is perfectly
    learnable by a two-level predictor with enough history — the
    structured component of each Table 2 cell.
    """
    if period < 2:
        raise ConfigurationError("period must be >= 2")
    p = min(max(taken_rate, 0.0), 1.0)
    x = min(max(transition_rate, 0.0), 1.0)

    # A cycle always has an even, >= 2 number of transitions, so very low
    # transition targets need a long enough period: realized rate is
    # transitions / period, and the period grows until that quantization
    # error stops mattering (e.g. x = 0.025 forces period >= 80).
    if 0.0 < x < 2 / period:
        period = min(int(np.ceil(2 / x)), 2000)

    taken_total = int(round(p * period))
    taken_total = min(max(taken_total, 0), period)
    if taken_total == 0 or x == 0.0:
        return PatternModel([0] * period if taken_total == 0 else [1] * period)
    if taken_total == period:
        return PatternModel([1] * period)

    # Number of transitions in the cycle (even, so the cycle closes).
    transitions = int(round(x * period))
    transitions = max(2, transitions - transitions % 2)
    half = transitions // 2  # number of taken runs (= not-taken runs)
    half = min(half, taken_total, period - taken_total)
    half = max(half, 1)

    taken_runs = _split_into_runs(taken_total, half)
    not_taken_runs = _split_into_runs(period - taken_total, half)
    pattern: list[int] = []
    for t_run, n_run in zip(taken_runs, not_taken_runs):
        pattern += [1] * t_run
        pattern += [0] * n_run
    return PatternModel(pattern)


def _split_into_runs(total: int, runs: int) -> list[int]:
    """Split ``total`` into ``runs`` positive near-equal parts."""
    base = total // runs
    extra = total % runs
    return [base + (1 if i < extra else 0) for i in range(runs)]
