"""Synthetic branch workloads calibrated to the paper's SPECint95 data."""

from .models import (
    AlternatingModel,
    BiasedModel,
    BranchModel,
    LoopModel,
    MarkovModel,
    PatternModel,
    PhasedModel,
    pattern_for_rates,
)
from .population import BranchPopulation, BranchSpec, population_from_joint
from .spec95 import (
    BENCHMARK_CHARACTERS,
    BENCHMARK_NAMES,
    SPEC95_INPUTS,
    TABLE2_JOINT_PERCENT,
    BenchmarkCharacter,
    InputSet,
    benchmark_joint_matrix,
    input_trace,
    make_population,
    scaled_length,
    suite_traces,
)

__all__ = [
    "BranchModel",
    "BiasedModel",
    "PatternModel",
    "LoopModel",
    "AlternatingModel",
    "MarkovModel",
    "PhasedModel",
    "pattern_for_rates",
    "BranchSpec",
    "BranchPopulation",
    "population_from_joint",
    "TABLE2_JOINT_PERCENT",
    "BENCHMARK_NAMES",
    "BENCHMARK_CHARACTERS",
    "BenchmarkCharacter",
    "SPEC95_INPUTS",
    "InputSet",
    "benchmark_joint_matrix",
    "make_population",
    "input_trace",
    "scaled_length",
    "suite_traces",
]
