"""Parametric VM-kernel generator (``repro gen-kernel``).

Where :mod:`repro.workloads.programs.kernels` ships a fixed set of
hand-written algorithms, this module *manufactures* mini-ISA programs
with controllable branch topology, in the spirit of perf-tools'
``gen-kernel.py``: you dial in the number of static branches, an unroll
factor, loop-nest depth, the physical jump pattern, PC alignment, and
per-branch taken/transition-rate targets, and get back a deterministic
``vm`` program whose measured branch behaviour hits those targets.

The trick that makes the targets exact rather than statistical-ish:
each static branch site reads its outcome for the current iteration
from a *pre-generated table* in VM data memory (one two-state Markov
stream per site, :class:`~repro.workloads.synthetic.models.MarkovModel`
seeded from ``seed``), and branches on the loaded bit.  The trace
recorded at that PC is therefore *exactly* the generated stream — the
transition-rate class of every site is known by construction, which is
what makes the ``adversarial`` suite's near-boundary members meaningful.

The program still computes something real: every site counts its taken
executions in memory and the epilogue ``OUT``-dumps the counters, so
:func:`run_generated` verifies architectural output against the table
sums exactly like ``run_kernel`` verifies a sort.  Topology knobs:

``branches`` × ``unroll``
    static branch sites in the innermost body (``unroll`` replicas per
    logical branch, each with its own independent stream at the same
    rate targets).
``depth``
    loop-nest depth (1–3); outer levels add their own biased back-edge
    branches around the body.
``pattern``
    ``"seq"`` lays sites out in execution order; ``"jumpy"`` scrambles
    their physical placement (execution order unchanged, chained by
    ``JMP``), so branch PCs are non-monotonic in time.
``align``
    0, or 2–12: pad (with never-executed filler) so every site's block
    starts on a ``2**align``-byte PC boundary — all measured PCs become
    congruent modulo ``2**align``, colliding in any predictor table
    indexed by fewer than ``align - 2`` PC bits (aliasing stress).

See ``docs/INGEST.md`` for the full parameter reference.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ...errors import ConfigurationError
from ...isa.assembler import PC_STRIDE, Program, assemble
from ...vm.machine import RunResult, run_traced
from ..synthetic.models import MarkovModel

__all__ = [
    "GeneratedKernel",
    "PATTERNS",
    "generate_kernel",
    "run_generated",
]

#: Supported physical layout patterns.
PATTERNS = ("seq", "jumpy")

#: Branch-counter array base in data memory (one word per site).
_CNT_BASE = 0

#: Outcome tables start here; sites must fit below it.
_TBL_BASE = 256

#: Hard ceiling on emitted instructions (alignment padding included).
_MAX_INSTRUCTIONS = 200_000

_MAX_SITES = _TBL_BASE
_MAX_DEPTH = 3


@dataclass(frozen=True)
class GeneratedKernel:
    """One generated program plus everything needed to run and verify it."""

    source: str
    program: Program
    memory_image: dict[int, Sequence[int]]
    #: Expected ``OUT`` stream: per-site taken counts, site order.
    expected_output: list[int]
    #: PC of each site's measured branch instruction, site order.
    branch_pcs: list[int]
    #: Per-site outcome tables (sites × iterations, uint8).
    tables: np.ndarray
    #: Innermost trip counts per nest level, outermost first.
    trips: tuple[int, ...]
    #: Echo of the generation parameters (JSON-friendly).
    params: dict = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Dynamic executions of every measured site."""
        return int(self.tables.shape[1])

    @property
    def sites(self) -> int:
        """Static branch sites (``branches * unroll``)."""
        return int(self.tables.shape[0])


class _Emitter:
    """Accumulates assembly text while tracking instruction slots.

    Labels and comments are free; :meth:`pad_to` inserts never-executed
    ``HALT`` filler so the *next* instruction lands on an aligned PC.
    """

    def __init__(self, base_address: int) -> None:
        self.base = base_address
        self.lines: list[str] = []
        self.count = 0

    def emit(self, text: str) -> int:
        """Emit one instruction; returns its slot index."""
        index = self.count
        self.lines.append(f"    {text}")
        self.count += 1
        if self.count > _MAX_INSTRUCTIONS:
            raise ConfigurationError(
                f"generated program exceeds {_MAX_INSTRUCTIONS} instructions; "
                "reduce branches/unroll/align"
            )
        return index

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def comment(self, text: str) -> None:
        self.lines.append(f"    ; {text}")

    def pad_to(self, align: int) -> None:
        """Pad with unreachable filler until the next PC is a multiple
        of ``2**align`` bytes."""
        if align == 0:
            return
        boundary = 1 << align
        while (self.base + self.count * PC_STRIDE) % boundary:
            self.emit("HALT            ; filler (never executed)")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _as_rate_tuple(value, name: str) -> tuple[float, ...]:
    if isinstance(value, (int, float)):
        value = (float(value),)
    rates = tuple(float(v) for v in value)
    if not rates:
        raise ConfigurationError(f"{name} must not be empty")
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"{name} entries must be in [0, 1], got {rate}")
    return rates


def _plan_trips(iters: int, depth: int) -> tuple[int, ...]:
    """Factor ``iters`` dynamic executions into ``depth`` nested trip
    counts (outermost first).  The innermost count is rounded up, so the
    realized iteration total is ``>= iters`` (and equals the product)."""
    if depth == 1:
        return (iters,)
    outer = max(2, round(iters ** (1.0 / depth)))
    inner = -(-iters // outer ** (depth - 1))  # ceil
    return (outer,) * (depth - 1) + (max(1, inner),)


def generate_kernel(
    *,
    branches: int = 4,
    iters: int = 256,
    unroll: int = 1,
    depth: int = 1,
    pattern: str = "seq",
    align: int = 0,
    taken_rates: Sequence[float] | float = (0.5,),
    transition_rates: Sequence[float] | float = (0.5,),
    seed: int = 0,
    base_address: int = 0x1000,
) -> GeneratedKernel:
    """Build one parametric kernel.  Deterministic in all arguments."""
    if branches < 1:
        raise ConfigurationError(f"branches must be >= 1, got {branches}")
    if unroll < 1:
        raise ConfigurationError(f"unroll must be >= 1, got {unroll}")
    if iters < 1:
        raise ConfigurationError(f"iters must be >= 1, got {iters}")
    if not 1 <= depth <= _MAX_DEPTH:
        raise ConfigurationError(f"depth must be in [1, {_MAX_DEPTH}], got {depth}")
    if pattern not in PATTERNS:
        raise ConfigurationError(
            f"unknown pattern {pattern!r}; choose from {', '.join(PATTERNS)}"
        )
    if align != 0 and not 2 <= align <= 12:
        raise ConfigurationError(f"align must be 0 or in [2, 12], got {align}")
    if base_address % PC_STRIDE:
        raise ConfigurationError(f"base_address must be a multiple of {PC_STRIDE}")
    sites = branches * unroll
    if sites > _MAX_SITES:
        raise ConfigurationError(
            f"branches * unroll must be <= {_MAX_SITES}, got {sites}"
        )
    t_rates = _as_rate_tuple(taken_rates, "taken_rates")
    x_rates = _as_rate_tuple(transition_rates, "transition_rates")

    trips = _plan_trips(iters, depth)
    period = 1
    for t in trips:
        period *= t

    # One independent Markov stream per site; replicas of the same
    # logical branch share rate targets but not realizations.
    rng = np.random.default_rng(seed)
    tables = np.empty((sites, period), dtype=np.uint8)
    for s in range(sites):
        b = s % branches
        model = MarkovModel.for_rates(t_rates[b % len(t_rates)], x_rates[b % len(x_rates)])
        tables[s] = model.generate(period, rng)

    # Physical placement: execution order is always site 0..sites-1;
    # "jumpy" permutes where the blocks live in the address space.
    if pattern == "jumpy" and sites > 1:
        physical = [int(v) for v in rng.permutation(sites)]
    else:
        physical = list(range(sites))

    emit = _Emitter(base_address)
    emit.comment(
        f"gen-kernel: branches={branches} unroll={unroll} depth={depth} "
        f"pattern={pattern} align={align} seed={seed}"
    )

    # Prologue: loop limits (outermost level 1 in r11..), table index.
    for level, trip in enumerate(trips, start=1):
        emit.emit(f"LI   r{10 + level}, {trip}   ; level-{level} trip count")
    emit.emit("LI   r3, 0          ; table index")
    for level in range(1, depth + 1):
        emit.emit(f"LI   r{7 + level}, 0")
        if level < depth:
            emit.label(f"loop{level}")
            emit.emit(f"LI   r{7 + level + 1}, 0")
    emit.label(f"loop{depth}")

    # Body: enter the chain at site 0 wherever it physically lives.
    emit.emit("JMP  blk_0")
    branch_slots: dict[int, int] = {}
    for s in physical:
        emit.pad_to(align)
        emit.label(f"blk_{s}")
        emit.emit(f"LD   r4, r3, {_TBL_BASE + s * period}")
        branch_slots[s] = emit.emit(f"BNE  r4, r0, take_{s}")
        emit.emit(f"JMP  next_{s}")
        emit.label(f"take_{s}")
        emit.emit(f"LD   r5, r0, {_CNT_BASE + s}")
        emit.emit("ADDI r5, r5, 1")
        emit.emit(f"ST   r5, r0, {_CNT_BASE + s}")
        emit.label(f"next_{s}")
        target = f"blk_{s + 1}" if s + 1 < sites else "body_end"
        emit.emit(f"JMP  {target}")
    emit.label("body_end")

    # Loop tails, innermost out.
    emit.emit("ADDI r3, r3, 1")
    for level in range(depth, 0, -1):
        emit.emit(f"ADDI r{7 + level}, r{7 + level}, 1")
        emit.emit(f"BLT  r{7 + level}, r{10 + level}, loop{level}")

    # Epilogue: dump per-site taken counters.
    emit.emit(f"LI   r1, {sites}")
    emit.emit("LI   r6, 0")
    emit.label("dump")
    emit.emit("BGE  r6, r1, done")
    emit.emit(f"LD   r7, r6, {_CNT_BASE}")
    emit.emit("OUT  r7")
    emit.emit("ADDI r6, r6, 1")
    emit.emit("JMP  dump")
    emit.label("done")
    emit.emit("HALT")

    source = emit.source()
    program = assemble(source, base_address=base_address)
    memory_image: dict[int, Sequence[int]] = {_CNT_BASE: [0] * sites}
    for s in range(sites):
        memory_image[_TBL_BASE + s * period] = tables[s].tolist()
    return GeneratedKernel(
        source=source,
        program=program,
        memory_image=memory_image,
        expected_output=[int(tables[s].sum()) for s in range(sites)],
        branch_pcs=[program.pc_of(branch_slots[s]) for s in range(sites)],
        tables=tables,
        trips=trips,
        params={
            "branches": branches,
            "iters": iters,
            "unroll": unroll,
            "depth": depth,
            "pattern": pattern,
            "align": align,
            "taken_rates": list(t_rates),
            "transition_rates": list(x_rates),
            "seed": seed,
            "base_address": base_address,
            "sites": sites,
            "period": period,
        },
    )


def run_generated(
    kernel: GeneratedKernel,
    *,
    max_steps: int = 50_000_000,
    name: str = "",
    verify: bool = True,
) -> RunResult:
    """Execute a generated kernel, verify its output, return the run.

    The architectural check (``OUT`` counters == table sums) anchors the
    trace to program correctness exactly like ``run_kernel`` does for
    the hand-written kernels.
    """
    sites = kernel.sites
    period = kernel.iterations
    words = _TBL_BASE + sites * period
    memory_words = 1 << max(16, (words - 1).bit_length())
    result = run_traced(
        kernel.program,
        memory_image=kernel.memory_image,
        max_steps=max_steps,
        memory_words=memory_words,
        name=name or "vm/gen-kernel",
    )
    if verify and result.output != kernel.expected_output:
        raise ConfigurationError(
            "generated kernel produced wrong taken counts - VM or generator bug"
        )
    return result
