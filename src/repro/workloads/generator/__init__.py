"""Parametric workload generation.

:mod:`repro.workloads.generator.genkernel` manufactures mini-ISA
programs with dial-a-topology branch behaviour — the counterpart to the
hand-written kernels in :mod:`repro.workloads.programs` — surfaced as
the :class:`~repro.workload_spec.GenKernelSpec` workload kind, the
``repro gen-kernel`` CLI verb, and the named ``adversarial`` suite.
"""

from .genkernel import (
    PATTERNS,
    GeneratedKernel,
    generate_kernel,
    run_generated,
)

__all__ = [
    "PATTERNS",
    "GeneratedKernel",
    "generate_kernel",
    "run_generated",
]
