"""Workload generation: synthetic calibrated populations and VM programs."""

from . import synthetic

__all__ = ["synthetic"]
