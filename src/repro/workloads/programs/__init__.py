"""VM workload programs: real kernels emitting authentic branch traces."""

from .kernels import KERNEL_NAMES, build_kernel, run_kernel

__all__ = ["KERNEL_NAMES", "build_kernel", "run_kernel"]
