"""Workload kernels written in the mini-ISA assembly.

Each kernel is a real algorithm — the VM executes it to completion and
its conditional branches land in the trace.  The kernels cover the
branch-behaviour space the paper studies:

* ``bubble_sort`` — loop back-edges (biased) + data-dependent compares
  whose taken rate drifts as the array gets sorted,
* ``binary_search`` — near-50 % data-dependent compares (hard class),
* ``rle_compress`` — a run-length encoder (the compress analogue):
  branch behaviour tracks input run structure,
* ``sieve`` — composite-flag tests with a thinning taken rate,
* ``byte_scanner`` — a parser-style classification ladder (perl-like),
* ``matmul`` — pure loop nests (ijpeg-like, heavily biased).

All builders return ``(Program, memory_image)``; :func:`run_kernel`
executes one and returns a :class:`~repro.vm.machine.RunResult` whose
``trace`` is the branch stream, and verifies the architectural output
(sorts actually sort, the sieve finds real primes) so trace validity is
anchored to program correctness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...errors import ConfigurationError
from ...isa.assembler import Program, assemble
from ...vm.machine import RunResult, run_traced

__all__ = [
    "KERNEL_NAMES",
    "build_kernel",
    "run_kernel",
]


def _bubble_sort(n: int) -> str:
    return f"""
        LI   r1, {n}        ; n
        LI   r2, 0          ; i
    outer:
        ADDI r9, r1, -1     ; n-1
        BGE  r2, r9, output
        LI   r3, 0          ; j
        SUB  r10, r9, r2    ; limit = n-1-i
    inner:
        BGE  r3, r10, inner_done
        LD   r4, r3, 0
        ADDI r5, r3, 1
        LD   r6, r5, 0
        BLE  r4, r6, no_swap
        ST   r6, r3, 0
        ST   r4, r5, 0
    no_swap:
        ADDI r3, r3, 1
        JMP  inner
    inner_done:
        ADDI r2, r2, 1
        JMP  outer
    output:
        LI   r3, 0
    out_loop:
        BGE  r3, r1, end
        LD   r4, r3, 0
        OUT  r4
        ADDI r3, r3, 1
        JMP  out_loop
    end:
        HALT
    """


def _binary_search(n: int, queries: int) -> str:
    return f"""
        LI   r1, {n}         ; array length
        LI   r2, {queries}   ; query count
        LI   r3, 0           ; query index
    q_loop:
        BGE  r3, r2, end
        LD   r4, r3, 1024    ; key
        LI   r5, 0           ; lo
        MOV  r6, r1          ; hi
    search:
        BGE  r5, r6, not_found
        ADD  r7, r5, r6
        LI   r8, 2
        DIV  r7, r7, r8      ; mid
        LD   r9, r7, 0
        BEQ  r9, r4, found
        BLT  r9, r4, go_right
        MOV  r6, r7          ; hi = mid
        JMP  search
    go_right:
        ADDI r5, r7, 1       ; lo = mid + 1
        JMP  search
    found:
        OUT  r7
        JMP  next_query
    not_found:
        LI   r7, -1
        OUT  r7
    next_query:
        ADDI r3, r3, 1
        JMP  q_loop
    end:
        HALT
    """


def _rle_compress(n: int) -> str:
    return f"""
        LI   r1, {n}        ; input length
        LI   r2, 0          ; position
    scan:
        LD   r3, r2, 0      ; run value
        LI   r4, 1          ; run length
    run:
        ADD  r5, r2, r4
        BGE  r5, r1, flush
        LD   r6, r5, 0
        BNE  r6, r3, flush
        ADDI r4, r4, 1
        JMP  run
    flush:
        OUT  r3
        OUT  r4
        ADD  r2, r2, r4
        BLT  r2, r1, scan
        HALT
    """


def _sieve(n: int) -> str:
    return f"""
        LI   r1, {n}
        LI   r2, 2
    i_loop:
        BGE  r2, r1, end
        LD   r3, r2, 0
        BNE  r3, r0, not_prime
        OUT  r2
        MUL  r4, r2, r2
    mark:
        BGE  r4, r1, not_prime
        LI   r5, 1
        ST   r5, r4, 0
        ADD  r4, r4, r2
        JMP  mark
    not_prime:
        ADDI r2, r2, 1
        JMP  i_loop
    end:
        HALT
    """


def _byte_scanner(n: int) -> str:
    return f"""
        LI   r1, {n}
        LI   r2, 0          ; index
        LI   r4, 0          ; control chars
        LI   r5, 0          ; digits/punctuation band
        LI   r6, 0          ; multiples of 7
        LI   r7, 0          ; everything else
    loop:
        BGE  r2, r1, end
        LD   r3, r2, 0
        LI   r8, 32
        BGE  r3, r8, not_ctrl
        ADDI r4, r4, 1
        JMP  next
    not_ctrl:
        LI   r8, 64
        BGE  r3, r8, not_low
        ADDI r5, r5, 1
        JMP  next
    not_low:
        LI   r8, 7
        MOD  r9, r3, r8
        BNE  r9, r0, other
        ADDI r6, r6, 1
        JMP  next
    other:
        ADDI r7, r7, 1
    next:
        ADDI r2, r2, 1
        JMP  loop
    end:
        OUT  r4
        OUT  r5
        OUT  r6
        OUT  r7
        HALT
    """


def _matmul(n: int) -> str:
    return f"""
        LI   r1, {n}
        LI   r2, 0          ; i
    i_loop:
        BGE  r2, r1, end
        LI   r3, 0          ; j
    j_loop:
        BGE  r3, r1, i_next
        LI   r4, 0          ; k
        LI   r5, 0          ; accumulator
    k_loop:
        BGE  r4, r1, store
        MUL  r6, r2, r1
        ADD  r6, r6, r4
        LD   r7, r6, 0      ; A[i*n+k]
        MUL  r8, r4, r1
        ADD  r8, r8, r3
        LD   r9, r8, 4096   ; B[k*n+j]
        MUL  r10, r7, r9
        ADD  r5, r5, r10
        ADDI r4, r4, 1
        JMP  k_loop
    store:
        MUL  r6, r2, r1
        ADD  r6, r6, r3
        ST   r5, r6, 8192   ; C[i*n+j]
        OUT  r5
        ADDI r3, r3, 1
        JMP  j_loop
    i_next:
        ADDI r2, r2, 1
        JMP  i_loop
    end:
        HALT
    """


KERNEL_NAMES = (
    "bubble_sort",
    "binary_search",
    "rle_compress",
    "sieve",
    "byte_scanner",
    "matmul",
)


def build_kernel(
    name: str, *, size: int = 64, seed: int = 0, base_address: int = 0x1000
) -> tuple[Program, dict[int, Sequence[int]], dict]:
    """Assemble a kernel and its input image.

    Returns ``(program, memory_image, expectation)`` where
    ``expectation`` carries whatever :func:`run_kernel` needs to verify
    the architectural output.
    """
    rng = np.random.default_rng(seed)
    if name == "bubble_sort":
        data = rng.integers(0, 1000, size=size).tolist()
        return (
            assemble(_bubble_sort(size), base_address=base_address),
            {0: data},
            {"output": sorted(data)},
        )
    if name == "binary_search":
        array = sorted(rng.integers(0, 10 * size, size=size).tolist())
        queries = [
            int(rng.choice(array)) if rng.random() < 0.6 else int(rng.integers(0, 10 * size))
            for _ in range(size)
        ]
        expected = []
        for key in queries:
            expected.append(_binary_search_oracle(array, key))
        return (
            assemble(_binary_search(size, len(queries)), base_address=base_address),
            {0: array, 1024: queries},
            {"output": expected},
        )
    if name == "rle_compress":
        data = []
        while len(data) < size:
            run = int(rng.geometric(0.3))
            data.extend([int(rng.integers(0, 8))] * run)
        data = data[:size]
        expected = []
        i = 0
        while i < len(data):
            j = i
            while j < len(data) and data[j] == data[i]:
                j += 1
            expected += [data[i], j - i]
            i = j
        return (
            assemble(_rle_compress(size), base_address=base_address),
            {0: data},
            {"output": expected},
        )
    if name == "sieve":
        limit = max(size, 8)
        primes = [p for p in range(2, limit) if all(p % d for d in range(2, p))]
        return (
            assemble(_sieve(limit), base_address=base_address),
            {},
            {"output": primes},
        )
    if name == "byte_scanner":
        data = rng.integers(0, 256, size=size).tolist()
        counts = [0, 0, 0, 0]
        for byte in data:
            if byte < 32:
                counts[0] += 1
            elif byte < 64:
                counts[1] += 1
            elif byte % 7 == 0:
                counts[2] += 1
            else:
                counts[3] += 1
        return (
            assemble(_byte_scanner(size), base_address=base_address),
            {0: data},
            {"output": counts},
        )
    if name == "matmul":
        # Matrix side grows with size so loop back-edges stay heavily
        # biased (exit taken once per n+1 tests).
        n = max(4, size // 3)
        a = rng.integers(-9, 10, size=(n, n))
        b = rng.integers(-9, 10, size=(n, n))
        c = (a @ b).flatten().tolist()
        return (
            assemble(_matmul(n), base_address=base_address),
            {0: a.flatten().tolist(), 4096: b.flatten().tolist()},
            {"output": c},
        )
    raise ConfigurationError(f"unknown kernel {name!r}; available: {KERNEL_NAMES}")


def run_kernel(
    name: str,
    *,
    size: int = 64,
    seed: int = 0,
    base_address: int = 0x1000,
    max_steps: int = 20_000_000,
    verify: bool = True,
) -> RunResult:
    """Assemble, run, verify and trace one kernel."""
    program, image, expectation = build_kernel(
        name, size=size, seed=seed, base_address=base_address
    )
    result = run_traced(
        program,
        memory_image=image,
        max_steps=max_steps,
        name=f"vm/{name}",
    )
    if verify and result.output != expectation["output"]:
        raise ConfigurationError(
            f"kernel {name!r} produced wrong output - VM or kernel bug"
        )
    return result


def _binary_search_oracle(array: list[int], key: int) -> int:
    lo, hi = 0, len(array)
    while lo < hi:
        mid = (lo + hi) // 2
        if array[mid] == key:
            return mid
        if array[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return -1
