"""Command-line interface.

::

    python -m repro list                      # experiments available
    python -m repro run fig3 [options]        # one table/figure
    python -m repro run all [options]         # everything, paper order
    python -m repro misclassification         # the headline §4.2 numbers
    python -m repro specs                     # predictor spec schema
    python -m repro simulate --spec S [opts]  # simulate a JSON spec

Options: ``--scale`` (trace length multiplier), ``--inputs primary|all``
(one input set per benchmark vs all 34), ``--cache-dir``, ``--no-cache``,
``--engine``.  ``--spec`` accepts inline JSON or a path to a JSON file;
see ``docs/API.md`` for the spec schema.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from collections.abc import Sequence
from pathlib import Path

from .analysis.misclassification import misclassification_report
from .errors import ConfigurationError, ReproError
from .experiments import ExperimentContext, all_experiment_ids, get_experiment
from .spec import PredictorSpec, spec_class, spec_from_json, spec_kinds

__all__ = ["main", "build_parser"]

DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Branch Transition Rate: A New Metric for "
            "Improved Branch Classification Analysis' (HPCA 2000)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (e.g. fig3, table2) or 'all'")
    _add_context_options(run)

    mis = sub.add_parser(
        "misclassification", help="print the section 4.2 headline numbers"
    )
    _add_context_options(mis)

    sub.add_parser("specs", help="list predictor spec kinds and their fields")

    sim = sub.add_parser(
        "simulate", help="simulate a declarative predictor spec over the suite"
    )
    sim.add_argument(
        "--spec",
        required=True,
        help="predictor spec: inline JSON or a path to a JSON file (see docs/API.md)",
    )
    sim.add_argument(
        "--benchmark",
        default=None,
        help="restrict to one benchmark (e.g. compress); default: whole suite",
    )
    sim.add_argument(
        "--show-plan",
        action="store_true",
        help="print the session execution plan before the results",
    )
    _add_context_options(sim)
    return parser


def _add_context_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=1.0, help="trace length multiplier (default 1.0)"
    )
    parser.add_argument(
        "--inputs",
        choices=("primary", "all"),
        default="primary",
        help="one input set per benchmark, or all 34 from Table 1",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"directory for the sweep cache (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read/write the sweep cache"
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "batched", "vectorized", "reference"),
        default="auto",
        help="simulation engine (default auto; see docs/ENGINES.md)",
    )


def _context_from(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        inputs=args.inputs,
        scale=args.scale,
        cache_dir=None if args.no_cache else args.cache_dir,
        engine=args.engine,
    )


def _load_spec(text: str) -> PredictorSpec:
    """Parse ``--spec``: inline JSON if it looks like an object, else a file."""
    candidate = text.strip()
    if candidate.startswith("{"):
        return spec_from_json(candidate)
    path = Path(candidate)
    if not path.exists():
        raise ConfigurationError(
            f"spec file {candidate!r} not found (inline specs must start with '{{')"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {candidate!r}: {exc}") from None
    return spec_from_json(text)


def _run_specs() -> int:
    for kind in spec_kinds():
        cls = spec_class(kind)
        print(f"{kind}:")
        for f in dataclasses.fields(cls):
            if f.default is not dataclasses.MISSING:
                default = f.default
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                default = f.default_factory()  # type: ignore[misc]
            else:
                default = "<required>"
            print(f"  {f.name} (default {default!r})")
    return 0


def _run_simulate(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    context = _context_from(args)
    traces = context.traces
    if args.benchmark is not None:
        traces = [t for t in traces if t.name.split("/", 1)[0] == args.benchmark]
        if not traces:
            known = sorted({t.name.split("/", 1)[0] for t in context.traces})
            raise ConfigurationError(
                f"no traces for benchmark {args.benchmark!r}; available: {known}"
            )

    session = context.session()
    jobs = [session.submit(trace, spec) for trace in traces]
    if args.show_plan:
        print(session.plan().describe())
        print()
    results = session.run()

    built_name = results[jobs[0]].predictor_name or spec.kind
    print(f"predictor: {built_name} (kind {spec.kind}, {spec.storage_bits()} bits)")
    total_execs = total_misses = 0
    for job in jobs:
        result = results[job]
        total_execs += result.total_executions
        total_misses += result.total_mispredictions
        print(
            f"{result.trace_name:24s} {result.miss_rate:8.4%}  "
            f"({result.total_mispredictions}/{result.total_executions})"
        )
    if total_execs:
        print(f"{'suite':24s} {total_misses / total_execs:8.4%}  ({total_misses}/{total_execs})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for experiment_id in all_experiment_ids():
                experiment = get_experiment(experiment_id)
                print(f"{experiment_id:8s} {experiment.paper_artifact:10s} {experiment.title}")
            return 0

        if args.command == "run":
            context = _context_from(args)
            ids = all_experiment_ids() if args.experiment == "all" else [args.experiment]
            for experiment_id in ids:
                result = get_experiment(experiment_id).run(context)
                print(result.rendered)
                if result.paper_note:
                    print(f"[paper] {result.paper_note}")
                print()
            return 0

        if args.command == "misclassification":
            context = _context_from(args)
            report = misclassification_report(
                context.sweep.taken_distribution,
                context.sweep.transition_distribution,
            )
            print(f"taken-rate identified:       {report.taken_identified:.2f}% (paper 62.90%)")
            print(f"transition identified (GAs): {report.gas_transition_identified:.2f}% (paper 71.62%)")
            print(f"transition identified (PAs): {report.pas_transition_identified:.2f}% (paper 72.19%)")
            print(f"misclassified (GAs view):    {report.gas_misclassified:.2f}% (paper 8.72%)")
            print(f"misclassified (PAs view):    {report.pas_misclassified:.2f}% (paper 9.29%)")
            return 0

        if args.command == "specs":
            return _run_specs()

        if args.command == "simulate":
            return _run_simulate(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
