"""Command-line interface.

::

    python -m repro list                      # experiments available
    python -m repro run fig3 [options]        # one table/figure
    python -m repro run all [options]         # everything, paper order
    python -m repro misclassification         # the headline §4.2 numbers

Options: ``--scale`` (trace length multiplier), ``--inputs primary|all``
(one input set per benchmark vs all 34), ``--no-cache``, ``--engine``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis.misclassification import misclassification_report
from .errors import ReproError
from .experiments import ExperimentContext, all_experiment_ids, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Branch Transition Rate: A New Metric for "
            "Improved Branch Classification Analysis' (HPCA 2000)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (e.g. fig3, table2) or 'all'")
    _add_context_options(run)

    mis = sub.add_parser(
        "misclassification", help="print the section 4.2 headline numbers"
    )
    _add_context_options(mis)
    return parser


def _add_context_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=1.0, help="trace length multiplier (default 1.0)"
    )
    parser.add_argument(
        "--inputs",
        choices=("primary", "all"),
        default="primary",
        help="one input set per benchmark, or all 34 from Table 1",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read/write the sweep cache"
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "batched", "vectorized", "reference"),
        default="auto",
        help="simulation engine (default auto; see docs/ENGINES.md)",
    )


def _context_from(args: argparse.Namespace) -> ExperimentContext:
    return ExperimentContext(
        inputs=args.inputs,
        scale=args.scale,
        cache_dir=None if args.no_cache else ".repro-cache",
        engine=args.engine,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for experiment_id in all_experiment_ids():
                experiment = get_experiment(experiment_id)
                print(f"{experiment_id:8s} {experiment.paper_artifact:10s} {experiment.title}")
            return 0

        if args.command == "run":
            context = _context_from(args)
            ids = all_experiment_ids() if args.experiment == "all" else [args.experiment]
            for experiment_id in ids:
                result = get_experiment(experiment_id).run(context)
                print(result.rendered)
                if result.paper_note:
                    print(f"[paper] {result.paper_note}")
                print()
            return 0

        if args.command == "misclassification":
            context = _context_from(args)
            report = misclassification_report(
                context.sweep.taken_distribution,
                context.sweep.transition_distribution,
            )
            print(f"taken-rate identified:       {report.taken_identified:.2f}% (paper 62.90%)")
            print(f"transition identified (GAs): {report.gas_transition_identified:.2f}% (paper 71.62%)")
            print(f"transition identified (PAs): {report.pas_transition_identified:.2f}% (paper 72.19%)")
            print(f"misclassified (GAs view):    {report.gas_misclassified:.2f}% (paper 8.72%)")
            print(f"misclassified (PAs view):    {report.pas_misclassified:.2f}% (paper 9.29%)")
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
