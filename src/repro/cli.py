"""Command-line interface.

::

    python -m repro list                      # experiments available
    python -m repro run fig3 [options]        # one table/figure
    python -m repro run all --jobs 4          # everything, paper order,
                                              #   parallel artifact DAG
    python -m repro run all --suite kernels   # …on the VM kernel suite
    python -m repro plan fig5                 # print the artifact DAG
    python -m repro plan all                  # (shared nodes deduped)
    python -m repro artifacts list            # what the store holds
    python -m repro artifacts gc              # drop unreachable objects
    python -m repro misclassification         # the headline §4.2 numbers
    python -m repro specs                     # predictor spec schema
    python -m repro workloads                 # workload spec schema + suites
    python -m repro simulate --spec S [opts]  # simulate a JSON spec
    python -m repro simulate --spec S --workload W   # …on one workload
    python -m repro simulate --spec S --workload file:big.rbt  # streams
    python -m repro simulate --spec S --backend cext # compiled kernels
    python -m repro backends                  # backend availability
    python -m repro trace info FILE           # inspect a saved trace
    python -m repro trace convert IN OUT --v2 --compress  # re-chunk/zlib
    python -m repro lint [PATHS]              # invariant static analysis
    python -m repro lint --list-rules         # the rule catalogue
    python -m repro serve --port 8765         # analysis-service daemon
    python -m repro submit fig3               # run via a serve daemon

Experiments run through the artifact pipeline (see ``docs/API.md``,
*Pipeline & artifacts*): expensive artifacts are content-addressed in
the ``--cache-dir`` store and shared across tables/figures, ``--jobs N``
fans independent artifacts out over worker processes, and ``run all``
runs every experiment even when some fail, summarizing pass/fail at the
end (non-zero exit only then).

Options: ``--suite`` (named suite — ``spec95``, ``spec95-all``,
``kernels`` — or a workload/suite JSON file; see ``docs/WORKLOADS.md``),
``--scale`` (trace length multiplier), ``--inputs primary|all`` (one
input set per benchmark vs all 34; sugar for the default spec95 suite),
``--cache-dir``, ``--no-cache``, ``--engine``, ``--jobs``, plus the
fault-tolerance knobs (see ``docs/FAULTS.md``): ``--retries N``
(attempts per node on transient faults — worker death, timeout, store
I/O), ``--node-timeout SECONDS`` (per-node wall-clock limit), and
``--resume`` (continue a killed run from the store's
``run-report.json``; only missing artifacts recompute).  ``--spec``
and ``--workload`` accept inline JSON or a path to a JSON file; see
``docs/API.md`` and ``docs/WORKLOADS.md`` for the schemas.
``--workload`` also accepts a trace file directly (``file:<path>`` or
any path with the binary magic); binary files at or above
``REPRO_STREAM_THRESHOLD`` bytes (default 64 MiB) are *streamed*
chunk-at-a-time instead of materialized — see ``docs/TRACES.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from collections.abc import Sequence
from pathlib import Path

from .errors import ConfigurationError, LockTimeout, ReproError
from .experiments import ExperimentContext, all_experiment_ids, get_experiment
from .pipeline import RetryPolicy
from .spec import PredictorSpec, spec_class, spec_from_json, spec_kinds
from .workload_spec import (
    NAMED_SUITES,
    GenKernelSpec,
    SuiteSpec,
    load_suite,
    model_spec_kinds,
    named_suite,
    resolve_workload,
    workload_spec_class,
    workload_spec_kinds,
)
from .workloads.generator import PATTERNS as GEN_PATTERNS

__all__ = ["main", "build_parser"]

DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Branch Transition Rate: A New Metric for "
            "Improved Branch Classification Analysis' (HPCA 2000)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (e.g. fig3, table2) or 'all'")
    _add_context_options(run)

    plan = sub.add_parser(
        "plan", help="print the artifact DAG for an experiment (or 'all')"
    )
    plan.add_argument("experiment", help="experiment id (e.g. fig3, table2) or 'all'")
    _add_context_options(plan)

    artifacts = sub.add_parser(
        "artifacts", help="inspect or garbage-collect the artifact store"
    )
    artifacts_sub = artifacts.add_subparsers(dest="artifacts_command", required=True)
    art_list = artifacts_sub.add_parser(
        "list", help="list stored artifacts (manifest order, newest first)"
    )
    _add_context_options(art_list)
    art_gc = artifacts_sub.add_parser(
        "gc",
        help=(
            "delete objects the current configuration's full DAG cannot "
            "reach — pass the SAME --scale/--inputs you run with, or "
            "that configuration's warm artifacts are collected too"
        ),
    )
    art_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    art_gc.add_argument(
        "--lock-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help=(
            "how long to wait for the store's serve lock before failing "
            "with 'store busy' when a repro serve daemon holds the cache "
            "(default 5.0)"
        ),
    )
    _add_context_options(art_gc)

    mis = sub.add_parser(
        "misclassification", help="print the section 4.2 headline numbers"
    )
    _add_context_options(mis)

    sub.add_parser("specs", help="list predictor spec kinds and their fields")

    sub.add_parser(
        "workloads", help="list workload spec kinds, fields and named suites"
    )

    sim = sub.add_parser(
        "simulate", help="simulate a declarative predictor spec over a workload"
    )
    sim.add_argument(
        "--spec",
        required=True,
        help="predictor spec: inline JSON or a path to a JSON file (see docs/API.md)",
    )
    sim.add_argument(
        "--workload",
        default=None,
        help=(
            "workload spec: a named suite, inline JSON or a path to a JSON "
            "file (see docs/WORKLOADS.md); default: the context suite"
        ),
    )
    sim.add_argument(
        "--benchmark",
        default=None,
        help="restrict to one benchmark (e.g. compress); default: whole suite",
    )
    sim.add_argument(
        "--show-plan",
        action="store_true",
        help="print the session execution plan before the results",
    )
    sim.add_argument(
        "--backend",
        choices=("auto", "python", "numba", "cext"),
        default=None,
        help=(
            "compiled-kernel backend for reference-path families "
            "(default: $REPRO_ENGINE_BACKEND or auto; see "
            "docs/PERFORMANCE.md)"
        ),
    )
    sim.add_argument(
        "--workers",
        default=None,
        metavar="N",
        help=(
            "intra-trace workers for streamed sweep workloads: a count "
            "or 'auto' (default: $REPRO_SWEEP_WORKERS or 1)"
        ),
    )
    _add_context_options(sim)

    sub.add_parser(
        "backends",
        help=(
            "report compiled-kernel backend availability and what "
            "'auto' resolves to (see docs/PERFORMANCE.md)"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "statically analyze source for determinism / spec-contract / "
            "worker-safety / store-discipline violations (see docs/ANALYSIS.md)"
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed repro package)",
    )
    lint.add_argument(
        "--format",
        dest="lint_format",
        choices=("text", "json"),
        default="text",
        help="report format (default text; json emits machine-readable findings)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings (default "
            "lint-baseline.json next to the analyzed tree, when present)"
        ),
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (id, severity, scope, description)",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the analysis service daemon: HTTP/JSON job submission "
            "with dedupe, backpressure and a shared worker pool "
            "(see docs/SERVICE.md)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 picks an ephemeral one; default 8765)",
    )
    serve.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"shared artifact store root (default {DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes shared across jobs (default: "
            "$REPRO_SERVE_WORKERS or 1)"
        ),
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help=(
            "queued jobs before submissions get 429 backpressure "
            "(default: $REPRO_SERVE_QUEUE or 8)"
        ),
    )
    serve.add_argument(
        "--max-running",
        type=int,
        default=2,
        help="jobs executing concurrently (default 2)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per artifact node on transient faults (default 3)",
    )
    serve.add_argument(
        "--node-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-node wall-clock limit (default: no limit)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit an experiment to a running repro serve daemon",
    )
    submit.add_argument(
        "experiment",
        help="experiment id (e.g. fig3, table2) or an artifact target key",
    )
    submit.add_argument("--host", default="127.0.0.1", help="service host")
    submit.add_argument("--port", type=int, default=8765, help="service port")
    submit.add_argument(
        "--suite",
        default=None,
        help="workload suite name or suite JSON file (default: spec95)",
    )
    submit.add_argument(
        "--scale", type=float, default=1.0, help="trace length multiplier"
    )
    submit.add_argument(
        "--inputs", choices=("primary", "all"), default="primary",
        help="input sets for the default spec95 suite",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="stream per-node NDJSON progress events while waiting",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="how long to wait for the job to finish (default 600)",
    )

    trace = sub.add_parser("trace", help="inspect and convert saved trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_info = trace_sub.add_parser(
        "info",
        help=(
            "print format, length, PCs, rates and class histogram of a "
            "trace file (binary files are streamed, never materialized)"
        ),
    )
    trace_info.add_argument("path", help="trace file (.rbt binary or text format)")
    trace_info.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="machine-readable output (one JSON object, sorted keys)",
    )
    trace_convert = trace_sub.add_parser(
        "convert",
        help="convert a trace file between formats (v1 <-> chunked v2, zlib)",
    )
    trace_convert.add_argument("input", help="source trace file")
    trace_convert.add_argument("output", help="destination trace file")
    trace_convert.add_argument(
        "--version",
        dest="format_version",
        type=int,
        choices=(1, 2),
        default=2,
        help="output format version (default 2, chunked)",
    )
    trace_convert.add_argument(
        "--v2",
        dest="format_version",
        action="store_const",
        const=2,
        help="shorthand for --version 2",
    )
    trace_convert.add_argument(
        "--compress",
        action="store_true",
        help="zlib-compress the chunk payloads (v2 only)",
    )
    trace_convert.add_argument(
        "--chunk-len",
        type=int,
        default=None,
        help="records per chunk (default 1<<20; must be a multiple of 8)",
    )

    ingest = sub.add_parser(
        "ingest", help="convert externally captured branch traces to RBT"
    )
    ingest_sub = ingest.add_subparsers(dest="ingest_command", required=True)
    ingest_perf = ingest_sub.add_parser(
        "perf",
        help=(
            "parse `perf script -F brstack` output (or plain FROM => TO "
            "branch lines) into a chunked RBT v2 file, streaming — "
            "constant memory on multi-GB inputs (see docs/INGEST.md)"
        ),
    )
    ingest_perf.add_argument("input", help="perf script text dump")
    ingest_perf.add_argument(
        "-o", "--output", required=True, help="destination .rbt file"
    )
    ingest_perf.add_argument(
        "--event", default=None, help="keep only this perf event (e.g. branches)"
    )
    ingest_perf.add_argument(
        "--pid", type=int, default=None, help="keep only this process id"
    )
    ingest_perf.add_argument(
        "--cond-only",
        action="store_true",
        help="drop branch-typed entries that are not conditional (save_type captures)",
    )
    ingest_perf.add_argument(
        "--compress", action="store_true", help="zlib-compress the chunk payloads"
    )
    ingest_perf.add_argument(
        "--chunk-len",
        type=int,
        default=None,
        help="records per chunk (default 1<<20; must be a multiple of 8)",
    )
    ingest_perf.add_argument(
        "--name", default="", help="trace name to store (default: input stem)"
    )
    ingest_perf.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the ingest report as JSON (sorted keys)",
    )

    gen = sub.add_parser(
        "gen-kernel",
        help=(
            "generate a parametric VM kernel (branch count, unroll, nest "
            "depth, jump pattern, per-branch rate targets), run it and "
            "report — or emit its assembly/spec/trace"
        ),
    )
    gen.add_argument("--branches", type=int, default=4, help="logical branches (default 4)")
    gen.add_argument(
        "--iters", type=int, default=256, help="executions per branch site (default 256)"
    )
    gen.add_argument(
        "-n", "--unroll", type=int, default=1, help="body unroll factor (default 1)"
    )
    gen.add_argument("--depth", type=int, default=1, help="loop-nest depth 1-3 (default 1)")
    gen.add_argument(
        "--pattern",
        choices=GEN_PATTERNS,
        default="seq",
        help="physical block layout (default seq)",
    )
    gen.add_argument(
        "--align",
        type=int,
        default=0,
        help="0 or 2-12: align branch blocks to 2**align-byte PCs (aliasing stress)",
    )
    gen.add_argument(
        "--taken-rate",
        dest="taken_rates",
        type=float,
        action="append",
        metavar="RATE",
        help="per-branch taken-rate target; repeatable, cycled (default 0.5)",
    )
    gen.add_argument(
        "--transition-rate",
        dest="transition_rates",
        type=float,
        action="append",
        metavar="RATE",
        help="per-branch transition-rate target; repeatable, cycled (default 0.5)",
    )
    gen.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    gen.add_argument("--alias", default="", help="workload label (default derived)")
    gen.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the branch trace to this .rbt file (chunked v2)",
    )
    gen.add_argument(
        "--compress", action="store_true", help="zlib-compress the written trace"
    )
    gen.add_argument(
        "--asm", action="store_true", help="print the generated assembly and exit"
    )
    gen.add_argument(
        "--spec",
        dest="emit_spec",
        action="store_true",
        help="print the equivalent gen-kernel workload spec JSON and exit",
    )
    gen.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the run report as JSON (sorted keys)",
    )
    return parser


def _add_context_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suite",
        default=None,
        help=(
            "workload suite: a built-in name "
            f"({', '.join(sorted(NAMED_SUITES))}) or a suite JSON file "
            "(default: the spec95 suite built from --inputs/--scale)"
        ),
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="trace length multiplier (default 1.0)"
    )
    parser.add_argument(
        "--inputs",
        choices=("primary", "all"),
        default="primary",
        help="one input set per benchmark, or all 34 from Table 1",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"directory for the artifact store (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read/write the artifact store"
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "batched", "vectorized", "reference"),
        default="auto",
        help="simulation engine (default auto; see docs/ENGINES.md)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent artifacts (default 1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help=(
            "attempts per artifact node on transient faults — worker "
            "death, timeout, store I/O (default 1: no retry; see "
            "docs/FAULTS.md)"
        ),
    )
    parser.add_argument(
        "--node-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-node wall-clock limit; an attempt past it counts as a "
            "transient timeout fault (default: no limit)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume a killed run from the store's run-report.json: "
            "completed artifacts are served from the cache, only "
            "missing nodes recompute (requires the cache)"
        ),
    )


def _context_from(args: argparse.Namespace) -> ExperimentContext:
    suite = None
    if getattr(args, "suite", None) is not None:
        suite = load_suite(args.suite, scale=args.scale)
    retries = getattr(args, "retries", 1)
    if retries < 1:
        raise ConfigurationError(f"--retries must be at least 1, got {retries}")
    resume = getattr(args, "resume", False)
    if resume and args.no_cache:
        raise ConfigurationError(
            "--resume needs the artifact store (it replans against "
            "run-report.json and cached artifacts); drop --no-cache"
        )
    node_timeout = getattr(args, "node_timeout", None)
    if node_timeout is not None and node_timeout <= 0:
        raise ConfigurationError(
            f"--node-timeout must be positive, got {node_timeout:g}"
        )
    return ExperimentContext(
        inputs=args.inputs,
        scale=args.scale,
        cache_dir=None if args.no_cache else args.cache_dir,
        engine=args.engine,
        jobs=args.jobs,
        suite=suite,
        retry=RetryPolicy(max_attempts=retries),
        node_timeout=node_timeout,
        resume=resume,
    )


def _load_spec(text: str) -> PredictorSpec:
    """Parse ``--spec``: inline JSON if it looks like an object, else a file."""
    candidate = text.strip()
    if candidate.startswith("{"):
        return spec_from_json(candidate)
    path = Path(candidate)
    if not path.exists():
        raise ConfigurationError(
            f"spec file {candidate!r} not found (inline specs must start with '{{')"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {candidate!r}: {exc}") from None
    return spec_from_json(text)


def _experiment_ids(selector: str) -> list[str]:
    """Resolve 'all' or a single id (validating it exists)."""
    if selector == "all":
        return all_experiment_ids()
    return [get_experiment(selector).experiment_id]


def _run_experiments(args: argparse.Namespace) -> int:
    context = _context_from(args)
    ids = _experiment_ids(args.experiment)

    # One experiment per pipeline call, so output streams as results
    # land: shared artifacts (the sweep) are computed once by whichever
    # experiment needs them first and served from the store/memo after,
    # and a failed shared artifact fails fast on the rest (the executor
    # remembers broken addresses) instead of recomputing per figure.
    passed: list[str] = []
    failed: list[str] = []
    run_report_path = None
    for experiment_id in ids:
        report = context.pipeline.run_experiments([experiment_id])
        run_report_path = report.run_report_path or run_report_path
        key = f"render:{experiment_id}"
        if key in report.values:
            result = report.values[key]
            print(result.rendered)
            if result.paper_note:
                print(f"[paper] {result.paper_note}")
            print(flush=True)
            passed.append(experiment_id)
        else:
            failed.append(experiment_id)
            causes = "; ".join(f.summary() for f in report.failures)
            print(
                f"error: {experiment_id}: {causes or 'upstream artifact failed'}",
                file=sys.stderr,
            )
    if len(ids) > 1:
        status = "ok" if not failed else "FAILED"
        print(
            f"run all: {len(passed)}/{len(ids)} experiments succeeded [{status}]"
            + (f" — failed: {', '.join(failed)}" if failed else "")
        )
    if failed and run_report_path is not None:
        print(
            f"run report: {run_report_path} (rerun with --resume to "
            "recompute only what is missing)",
            file=sys.stderr,
        )
    return 0 if not failed else 1


def _run_plan(args: argparse.Namespace) -> int:
    context = _context_from(args)
    ids = _experiment_ids(args.experiment)
    print(context.pipeline.plan_experiments(ids).describe())
    return 0


def _run_artifacts(args: argparse.Namespace) -> int:
    context = _context_from(args)
    store = context.store
    if store.root is None:
        print("artifact store is disabled (--no-cache)", file=sys.stderr)
        return 1

    if args.artifacts_command == "list":
        entries = store.entries()
        if not entries:
            print(f"artifact store at {store.root} is empty")
            return 0
        print(f"artifact store at {store.root}: {len(entries)} object(s)")
        for entry in entries:
            # Tolerate schema drift (records from other store versions,
            # hand-edits): show what is there instead of crashing.
            size = entry.get("bytes")
            print(
                f"  {entry.digest[:12]}  {entry.get('kind', '?'):18s} "
                f"{entry.get('key', '?'):28s} "
                f"{size if isinstance(size, int) else 0:>10,} B  "
                f"{entry.get('created', '?')}"
            )
        return 0

    config = context.config
    live = context.pipeline.planner.live_digests(store)
    # Destructive maintenance defers to a live `repro serve` daemon: gc
    # under a server would delete objects its in-flight jobs are about
    # to read.  The daemon holds the serve lock for its lifetime, so a
    # bounded acquire either wins (no server; safe to sweep) or names
    # the holder and fails fast instead of hanging or corrupting.
    try:
        store.serve_lock.acquire(timeout=max(0.0, args.lock_timeout))
    except LockTimeout:
        info = store.read_serve_info() or {}
        holder = f"serve pid {info['pid']}" if "pid" in info else "a repro serve daemon"
        address = f" at {info['address']}" if "address" in info else ""
        print(
            f"error: store busy (held by {holder}{address}): stop the "
            "server or raise --lock-timeout before gc",
            file=sys.stderr,
        )
        return 1
    try:
        removed, reclaimed = store.gc(live, dry_run=args.dry_run)
    finally:
        store.serve_lock.release()
    verb = "would remove" if args.dry_run else "removed"
    assert config.suite is not None
    print(
        f"gc: keeping artifacts reachable at suite={config.suite.name} "
        f"[{config.suite.content_key()[:12]}] scale={config.scale:g} "
        f"histories={config.history_lengths[0]}"
        f"..{config.history_lengths[-1]}"
    )
    print(f"gc: {verb} {removed} object(s), {reclaimed:,} B")
    return 0


def _run_specs() -> int:
    for kind in spec_kinds():
        cls = spec_class(kind)
        print(f"{kind}:")
        for f in dataclasses.fields(cls):
            if f.default is not dataclasses.MISSING:
                default = f.default
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                default = f.default_factory()  # type: ignore[misc]
            else:
                default = "<required>"
            print(f"  {f.name} (default {default!r})")
    return 0


def _run_workloads() -> int:
    print("workload spec kinds:")
    for kind in workload_spec_kinds():
        cls = workload_spec_class(kind)
        print(f"{kind}:")
        for f in dataclasses.fields(cls):
            if f.default is not dataclasses.MISSING:
                default = f.default
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                default = f.default_factory()  # type: ignore[misc]
            else:
                default = "<required>"
            print(f"  {f.name} (default {default!r})")
    print()
    print(f"branch model kinds (population branches): {', '.join(model_spec_kinds())}")
    print()
    print("named suites (--suite / --workload):")
    for name in sorted(NAMED_SUITES):
        suite = named_suite(name)
        print(f"  {name:12s} {len(suite.members)} member(s): "
              f"{', '.join(suite.labels()[:4])}"
              + (", …" if len(suite.members) > 4 else ""))
    return 0


def _run_trace_info(args: argparse.Namespace) -> int:
    import json as json_module

    import numpy as np

    from .classify.classes import NUM_CLASSES, rate_classes
    from .trace.io import MAGIC, TraceReader, load_trace
    from .trace.stats import TraceStats

    try:
        with open(args.path, "rb") as fp:
            is_binary = fp.read(4) == MAGIC
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {args.path!r}: {exc}") from None
    # One flat JSON-compatible dict describes the file in both output
    # modes; format-specific keys are None where they do not apply.
    info: dict = {
        "path": args.path,
        "compressed": False,
        "chunks": None,
        "chunk_len": None,
        "fingerprint": None,
    }
    if is_binary:
        # Binary files are streamed chunk-at-a-time: `trace info` on a
        # multi-GB v2 file runs in O(chunk) memory.
        with TraceReader(args.path) as reader:
            stats = TraceStats.from_chunks(iter(reader))
            info["name"] = reader.name
            info["records"] = len(reader)
            info["format"] = f"rbt-v{reader.version}"
            info["compressed"] = reader.compressed
            if reader.version >= 2:
                info["chunks"] = reader.num_chunks
                info["chunk_len"] = reader.chunk_len
                info["fingerprint"] = reader.fingerprint
    else:
        trace = load_trace(args.path)
        stats = TraceStats.from_trace(trace)
        info["name"] = trace.name
        info["records"] = len(trace)
        info["format"] = "text"
    total = stats.total_dynamic
    info["static_branches"] = len(stats)
    info["taken_rate"] = float(stats.taken.sum() / total) if total else 0.0
    info["transition_rate"] = 0.0
    histograms: dict[str, list[float]] = {}
    if len(stats):
        weights = stats.dynamic_weights()
        info["transition_rate"] = float((stats.transition_rates() * weights).sum())
        for label, rates in (
            ("taken", stats.taken_rates()),
            ("transition", stats.transition_rates()),
        ):
            shares = np.bincount(
                rate_classes(rates), weights=weights, minlength=NUM_CLASSES
            )
            histograms[label] = [float(share) for share in shares]
    info["class_histogram"] = histograms

    if args.as_json:
        print(json_module.dumps(info, sort_keys=True, indent=2))
        return 0

    print(f"trace:            {info['name'] or '<unnamed>'} ({args.path})")
    if info["format"] == "text":
        print("format:           text")
    else:
        version = info["format"].removeprefix("rbt-v")
        print(f"format:           rbt v{version}"
              + (" (zlib chunks)" if info["compressed"] else ""))
        if info["chunks"] is not None:
            print(f"chunks:           {info['chunks']:,} "
                  f"(nominal {info['chunk_len']:,} records each)")
            print(f"fingerprint:      {info['fingerprint'][:16]}…")
    print(f"records:          {info['records']:,}")
    print(f"static branches:  {info['static_branches']:,}")
    print(f"taken rate:       {info['taken_rate']:.4%}")
    if histograms:
        print(f"transition rate:  {info['transition_rate']:.4%}  "
              "(dynamic-weighted per-branch)")
        print()
        print("class histogram (% of dynamic branches):")
        header = "  class      " + "".join(f"{c:>7d}" for c in range(NUM_CLASSES))
        print(header)
        for label in ("taken", "transition"):
            print(
                f"  {label:10s} "
                + "".join(f"{share * 100:7.2f}" for share in histograms[label])
            )
    return 0


def _run_ingest_perf(args: argparse.Namespace) -> int:
    import json as json_module

    from .ingest.perf import ingest_perf
    from .trace.io import DEFAULT_CHUNK_LEN

    chunk_len = DEFAULT_CHUNK_LEN if args.chunk_len is None else args.chunk_len
    if chunk_len < 1 or chunk_len % 8:
        raise ConfigurationError(
            f"--chunk-len must be a positive multiple of 8, got {chunk_len}"
        )
    report = ingest_perf(
        args.input,
        args.output,
        event=args.event,
        pid=args.pid,
        cond_only=args.cond_only,
        compress=args.compress,
        chunk_len=chunk_len,
        name=args.name,
    )
    if args.as_json:
        payload = report.to_dict()
        payload["output"] = args.output
        print(json_module.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(f"ingested {args.input} -> {args.output}")
    print(f"  {report.summary()}")
    print(f"  source sha256: {report.sha256}")
    return 0


def _run_gen_kernel(args: argparse.Namespace) -> int:
    import json as json_module

    spec = GenKernelSpec(
        branches=args.branches,
        iters=args.iters,
        unroll=args.unroll,
        depth=args.depth,
        pattern=args.pattern,
        align=args.align,
        taken_rates=tuple(args.taken_rates or (0.5,)),
        transition_rates=tuple(args.transition_rates or (0.5,)),
        seed=args.seed,
        alias=args.alias,
    )
    if args.emit_spec:
        print(spec.to_json(indent=2, sort_keys=True))
        return 0
    kernel = spec._kernel()
    if args.asm:
        print(kernel.source, end="")
        return 0

    from .trace.stats import TraceStats
    from .workloads.generator import run_generated

    result = run_generated(kernel, name=spec.label)
    assert result.trace is not None
    trace = result.trace.with_name(spec.label)
    stats = TraceStats.from_trace(trace)
    report = {
        "workload": spec.label,
        "content_key": spec.content_key(),
        "sites": kernel.sites,
        "iterations": kernel.iterations,
        "trips": list(kernel.trips),
        "instructions": len(kernel.program),
        "steps": result.steps,
        "records": len(trace),
        "static_branches": len(stats),
        "branch_pcs": [hex(pc) for pc in kernel.branch_pcs],
        "output": None,
    }
    if args.output:
        from .trace.io import write_chunks

        write_chunks(
            [trace], args.output, name=spec.label, compress=args.compress
        )
        report["output"] = args.output
    if args.as_json:
        print(json_module.dumps(report, sort_keys=True, indent=2))
        return 0
    print(f"generated {spec.label} (key {report['content_key'][:16]}…)")
    print(
        f"  {report['sites']} branch site(s) x {report['iterations']} iteration(s), "
        f"trips {report['trips']}, {report['instructions']} instruction(s)"
    )
    print(f"  ran {report['steps']:,} step(s); trace: {report['records']:,} record(s), "
          f"{report['static_branches']} static branch(es)")
    if report["output"]:
        print(f"  trace written to {report['output']}")
    return 0


def _run_trace_convert(args: argparse.Namespace) -> int:
    from .trace.io import (
        DEFAULT_CHUNK_LEN,
        MAGIC,
        TraceReader,
        load_trace,
        rechunk,
        save_trace,
        write_chunks,
    )

    chunk_len = DEFAULT_CHUNK_LEN if args.chunk_len is None else args.chunk_len
    if chunk_len < 1 or chunk_len % 8:
        raise ConfigurationError(
            f"--chunk-len must be a positive multiple of 8, got {chunk_len}"
        )
    if args.compress and args.format_version == 1:
        raise ConfigurationError("format v1 does not support --compress")
    try:
        with open(args.input, "rb") as fp:
            is_binary = fp.read(4) == MAGIC
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read trace file {args.input!r}: {exc}"
        ) from None

    if is_binary and args.format_version == 2:
        # Binary-to-v2 streams: the full trace is never materialized.
        with TraceReader(args.input, chunk_len=chunk_len) as reader:
            records = write_chunks(
                rechunk(iter(reader), chunk_len),
                args.output,
                name=reader.name,
                compress=args.compress,
                chunk_len=chunk_len,
            )
    else:
        # Text sources and v1 targets need the whole trace in memory
        # (v1 stores all PCs before all outcomes).
        trace = load_trace(args.input)
        save_trace(
            trace, Path(args.output), version=args.format_version,
            compress=args.compress, chunk_len=chunk_len,
        )
        records = len(trace)
    out_bytes = Path(args.output).stat().st_size
    print(
        f"wrote {args.output}: v{args.format_version}, {records:,} records, "
        f"{out_bytes:,} B" + (" (zlib chunks)" if args.compress else "")
    )
    return 0


def _default_lint_baseline(paths: list[Path]) -> Path:
    """Where the baseline lives for this invocation.

    Search order: next to the current directory, then next to (or up to
    three levels above) the first analyzed path — so ``repro lint`` run
    from the repo root and ``repro lint src/repro`` both find the
    committed ``lint-baseline.json``.  When none exists yet, the first
    candidate is where ``--write-baseline`` will create it.
    """
    from .analysis.lint import DEFAULT_BASELINE_NAME

    candidates = [Path.cwd() / DEFAULT_BASELINE_NAME]
    if paths:
        first = paths[0] if paths[0].is_dir() else paths[0].parent
        for ancestor in (first, *list(first.resolve().parents)[:3]):
            candidates.append(ancestor / DEFAULT_BASELINE_NAME)
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return candidates[0]


def _run_lint(args: argparse.Namespace) -> int:
    import json as json_module

    from .analysis.lint import (
        all_rules,
        filter_baselined,
        lint_paths,
        load_baseline,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.id}  {rule.name}  [{rule.severity.value}]  scope: {scope}")
            print(f"      {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths] if args.paths else [Path(__file__).parent]
    findings = lint_paths(paths)

    baseline_path = (
        Path(args.baseline) if args.baseline else _default_lint_baseline(paths)
    )
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to baseline {baseline_path}")
        return 0
    absorbed = 0
    if not args.no_baseline:
        findings, absorbed = filter_baselined(findings, load_baseline(baseline_path))

    if args.lint_format == "json":
        print(
            json_module.dumps(
                {
                    "findings": [finding.to_dict() for finding in findings],
                    "baselined": absorbed,
                },
                indent=1,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = f"lint: {len(findings)} finding(s)"
        if absorbed:
            summary += f" ({absorbed} baselined in {baseline_path})"
        print(summary if findings or absorbed else "lint: clean")
    return 1 if findings else 0


def _parse_workers(value: str | None) -> int | str | None:
    """Parse ``--workers``: None passes through, 'auto' stays symbolic,
    anything else must be a positive integer."""
    if value is None or value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise ConfigurationError(
            f"--workers must be a positive integer or 'auto', got {value!r}"
        ) from None


def _run_backends() -> int:
    import os

    from .engine.backend import backend_availability, resolve_backend

    availability = backend_availability()
    for name, (usable, reason) in availability.items():
        status = "available" if usable else "unavailable"
        print(f"{name:8s} {status:12s} {reason}")
    env = os.environ.get("REPRO_ENGINE_BACKEND")
    resolved = resolve_backend("auto")
    print(f"{'auto':8s} {'->':12s} {resolved}")
    if env:
        print(f"REPRO_ENGINE_BACKEND={env} (the default when --backend is omitted)")
    return 0


def _run_simulate(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    context = _context_from(args)
    session = context.session(
        backend=args.backend, workers=_parse_workers(args.workers)
    )
    if args.workload is not None:
        workload = resolve_workload(args.workload, scale=args.scale)
        # A suite simulates per member (mirroring the per-benchmark
        # listing); any other workload is one job.
        workloads = list(workload.members) if isinstance(workload, SuiteSpec) else [workload]
        if args.benchmark is not None:
            kept = [w for w in workloads if w.label.split("/", 1)[0] == args.benchmark]
            if not kept:
                known = sorted({w.label.split("/", 1)[0] for w in workloads})
                raise ConfigurationError(
                    f"no workloads for benchmark {args.benchmark!r}; available: {known}"
                )
            workloads = kept
        jobs = [session.submit(w, spec) for w in workloads]
    else:
        traces = context.traces
        if args.benchmark is not None:
            traces = [t for t in traces if t.name.split("/", 1)[0] == args.benchmark]
            if not traces:
                known = sorted({t.name.split("/", 1)[0] for t in context.traces})
                raise ConfigurationError(
                    f"no traces for benchmark {args.benchmark!r}; available: {known}"
                )
        jobs = [session.submit(trace, spec) for trace in traces]
    if args.show_plan:
        print(session.plan().describe())
        print()
    results = session.run()

    built_name = results[jobs[0]].predictor_name or spec.kind
    print(f"predictor: {built_name} (kind {spec.kind}, {spec.storage_bits()} bits)")
    total_execs = total_misses = 0
    for job in jobs:
        result = results[job]
        total_execs += result.total_executions
        total_misses += result.total_mispredictions
        print(
            f"{result.trace_name:24s} {result.miss_rate:8.4%}  "
            f"({result.total_mispredictions}/{result.total_executions})"
        )
    if total_execs:
        print(f"{'suite':24s} {total_misses / total_execs:8.4%}  ({total_misses}/{total_execs})")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from .service import Scheduler, ServiceServer
    from .service.scheduler import QUEUE_ENV, WORKERS_ENV

    workers = args.workers
    if workers is None:
        workers = int(os.environ.get(WORKERS_ENV, "1"))
    queue_limit = args.queue_limit
    if queue_limit is None:
        queue_limit = int(os.environ.get(QUEUE_ENV, "8"))
    scheduler = Scheduler(
        args.cache_dir,
        workers=workers,
        max_running=args.max_running,
        queue_limit=queue_limit,
        retries=args.retries,
        node_timeout=args.node_timeout,
    )
    server = ServiceServer(scheduler, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        print(
            f"repro serve on http://{server.host}:{server.port} "
            f"(cache {args.cache_dir}, {workers} worker(s), "
            f"queue limit {queue_limit}) — Ctrl-C stops",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: stopped", file=sys.stderr)
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    request: dict[str, object] = {"scale": args.scale, "inputs": args.inputs}
    selector = args.experiment
    if ":" in selector or selector in ("sweep", "misclassification", "traces"):
        request["targets"] = [selector]
        render_keys: list[str] = []
    else:
        ids = _experiment_ids(selector)
        request["experiments"] = ids
        render_keys = [f"render:{experiment_id}" for experiment_id in ids]
    if args.suite is not None:
        request["suite"] = args.suite

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    job = client.submit(request)
    job_id = job["id"]
    shared = "" if job.get("created_job") else " (deduped onto in-flight job)"
    print(f"job {job_id[:12]} [{job['state']}]{shared}", file=sys.stderr)

    if args.follow:
        for event in client.events(job_id, timeout=args.timeout):
            if event.get("event") == "job":
                break
            print(
                f"  {event.get('status', '?'):9s} {event.get('key', '?')} "
                f"(attempts {event.get('attempts', 0)})",
                file=sys.stderr,
            )
    job = client.wait(job_id, timeout=args.timeout)
    if job["state"] != "done":
        print(f"error: job failed: {job.get('error')}", file=sys.stderr)
        return 1
    results = job.get("results", {})
    # Render output exactly as `repro run` does, so served results are
    # byte-comparable with the one-shot path.
    for target, result in results.items():
        if render_keys and target not in render_keys:
            continue
        if "rendered" in result:
            print(result["rendered"])
            if result.get("paper_note"):
                print(f"[paper] {result['paper_note']}")
            print(flush=True)
        else:
            print(f"{target}: stored at {result['digest']}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for experiment_id in all_experiment_ids():
                experiment = get_experiment(experiment_id)
                print(f"{experiment_id:8s} {experiment.paper_artifact:10s} {experiment.title}")
            return 0

        if args.command == "run":
            return _run_experiments(args)

        if args.command == "plan":
            return _run_plan(args)

        if args.command == "artifacts":
            return _run_artifacts(args)

        if args.command == "misclassification":
            report = _context_from(args).misclassification()
            print(f"taken-rate identified:       {report.taken_identified:.2f}% (paper 62.90%)")
            print(
                "transition identified (GAs): "
                f"{report.gas_transition_identified:.2f}% (paper 71.62%)"
            )
            print(
                "transition identified (PAs): "
                f"{report.pas_transition_identified:.2f}% (paper 72.19%)"
            )
            print(f"misclassified (GAs view):    {report.gas_misclassified:.2f}% (paper 8.72%)")
            print(f"misclassified (PAs view):    {report.pas_misclassified:.2f}% (paper 9.29%)")
            return 0

        if args.command == "specs":
            return _run_specs()

        if args.command == "workloads":
            return _run_workloads()

        if args.command == "backends":
            return _run_backends()

        if args.command == "simulate":
            return _run_simulate(args)

        if args.command == "lint":
            return _run_lint(args)

        if args.command == "serve":
            return _run_serve(args)

        if args.command == "submit":
            return _run_submit(args)

        if args.command == "trace":
            if args.trace_command == "convert":
                return _run_trace_convert(args)
            return _run_trace_info(args)

        if args.command == "ingest":
            return _run_ingest_perf(args)

        if args.command == "gen-kernel":
            return _run_gen_kernel(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
