"""Declarative workload specifications.

A :class:`WorkloadSpec` is a frozen, hashable, JSON-round-trippable
description of a trace *source* — *where branch outcomes come from*,
with no trace data attached.  It is the third leg of the declarative
API: :mod:`repro.spec` describes predictors, :mod:`repro.pipeline`
describes experiment artifacts, and this module describes workloads.
Every trace source in the library has a spec class:

* :class:`Spec95InputSpec` — one calibrated synthetic SPECint95
  benchmark/input pair (Table 1), at a chosen scale;
* :class:`PopulationSpec` — a raw model-mix population over the
  :class:`~repro.workloads.synthetic.models.BranchModel` zoo, one
  :class:`PopulationBranch` per static branch;
* :class:`KernelSpec` — a real program executed by the mini-ISA VM
  (:func:`~repro.workloads.programs.kernels.run_kernel`), with output
  verification anchoring trace validity;
* :class:`TraceFileSpec` — an on-disk binary/text trace file,
  content-fingerprinted so the spec's key tracks the file's *bytes*;
* composers :class:`ConcatSpec` / :class:`FilterSpec` wrapping
  :mod:`repro.trace.filters`, and :class:`SuiteSpec` — a named,
  ordered collection of uniquely-labelled member workloads (what the
  experiment pipeline plans over).

Every spec provides

* :meth:`~WorkloadSpec.materialize` — generate/load/execute the
  actual :class:`~repro.trace.stream.Trace` (always named
  :attr:`~WorkloadSpec.label`);
* :meth:`~WorkloadSpec.to_dict` / :meth:`~WorkloadSpec.from_dict` —
  JSON round-trip through the kind-keyed registry
  (:func:`workload_spec_from_dict`);
* :meth:`~WorkloadSpec.content_key` — a stable sha256 address of the
  *workload content*: equal keys mean bit-identical materialized
  traces (generators are seeded; files are fingerprinted by bytes),
  which is what lets :class:`repro.session.Session` and the pipeline's
  ``WorkloadNode`` cache by value rather than by object identity.

See ``docs/WORKLOADS.md`` for the JSON schema and a custom-suite
walkthrough.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, ClassVar

from .errors import ConfigurationError, SpecError, TraceError
from .trace.stream import Trace, concat as concat_traces

__all__ = [
    "WORKLOAD_KEY_VERSION",
    "WorkloadSpec",
    "Spec95InputSpec",
    "PopulationSpec",
    "PopulationBranch",
    "KernelSpec",
    "GenKernelSpec",
    "TraceFileSpec",
    "PerfLbrSpec",
    "ConcatSpec",
    "FilterSpec",
    "SuiteSpec",
    "ModelSpec",
    "BiasModelSpec",
    "PatternModelSpec",
    "LoopModelSpec",
    "AlternatingModelSpec",
    "MarkovModelSpec",
    "PhasedModelSpec",
    "workload_spec_kinds",
    "workload_spec_class",
    "workload_spec_from_dict",
    "workload_spec_from_json",
    "model_spec_kinds",
    "model_spec_from_dict",
    "trace_fingerprint",
    "file_fingerprint",
    "stream_threshold",
    "DEFAULT_STREAM_THRESHOLD",
    "NAMED_SUITES",
    "spec95_suite",
    "kernel_suite",
    "adversarial_suite",
    "named_suite",
    "resolve_workload",
    "load_suite",
]

#: Bumped when key semantics change incompatibly; part of every
#: content key, so old cache addresses simply stop matching.
WORKLOAD_KEY_VERSION = 1

#: Default :func:`stream_threshold`: trace files at or above this many
#: bytes are simulated out-of-core instead of materialized.
DEFAULT_STREAM_THRESHOLD = 64 * 1024 * 1024


def stream_threshold() -> int:
    """The out-of-core size threshold in bytes.

    Binary trace-file workloads whose file is at least this large are
    *streamed* (chunk-at-a-time, peak memory O(chunk)) by the session,
    the sweep and the pipeline instead of being materialized.
    Controlled by the ``REPRO_STREAM_THRESHOLD`` environment variable
    (bytes; ``0`` streams every binary trace file); defaults to
    :data:`DEFAULT_STREAM_THRESHOLD` (64 MiB).
    """
    raw = os.environ.get("REPRO_STREAM_THRESHOLD")
    if raw is None:
        return DEFAULT_STREAM_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_STREAM_THRESHOLD must be an integer byte count, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"REPRO_STREAM_THRESHOLD must be non-negative, got {value}"
        )
    return value

_REGISTRY: dict[str, type["WorkloadSpec"]] = {}
_MODEL_REGISTRY: dict[str, type["ModelSpec"]] = {}


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def trace_fingerprint(trace: Trace) -> str:
    """Stable content fingerprint of an in-memory trace.

    Covers the name and both data columns, so two separately
    materialized but bit-identical traces fingerprint equal — the
    fallback identity :class:`repro.session.Session` dedupes plain
    :class:`Trace` submissions by.
    """
    digest = hashlib.sha256()
    digest.update(trace.name.encode("utf-8", "replace"))
    digest.update(b"\x00")
    digest.update(trace.pcs.tobytes())
    digest.update(trace.outcomes.tobytes())
    return digest.hexdigest()


#: (resolved path, mtime_ns, size) -> sha256, so repeated key/plan
#: computations over an unpinned file re-read it only when it changes.
_FILE_FINGERPRINTS: dict[tuple[str, int, int], str] = {}


def file_fingerprint(path: str | Path) -> str:
    """sha256 of a file's bytes (the :class:`TraceFileSpec` key input).

    Cached per (path, mtime, size), so planning and session submission
    do not stream a large trace file once per ``content_key()`` call.
    """
    try:
        stat = os.stat(path)
        cache_key = (os.fspath(path), stat.st_mtime_ns, stat.st_size)
        cached = _FILE_FINGERPRINTS.get(cache_key)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        with open(path, "rb") as fp:
            for chunk in iter(lambda: fp.read(1 << 20), b""):
                digest.update(chunk)
    except OSError as exc:
        raise ConfigurationError(f"cannot fingerprint trace file {path!r}: {exc}") from None
    _FILE_FINGERPRINTS[cache_key] = digest.hexdigest()
    return _FILE_FINGERPRINTS[cache_key]


# -- shared serialization machinery -------------------------------------------


def _encode(value: Any) -> Any:
    """Encode one field value into plain JSON-compatible data."""
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    return value


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode`: kind-keyed dicts become specs, lists
    become tuples (JSON has no tuple type)."""
    if isinstance(value, Mapping) and "kind" in value:
        kind = value["kind"]
        if kind in _REGISTRY:
            return workload_spec_from_dict(value)
        if kind in _MODEL_REGISTRY:
            return model_spec_from_dict(value)
        raise SpecError(
            f"unknown workload/model kind {kind!r}; registered workload kinds: "
            f"{sorted(_REGISTRY)}, model kinds: {sorted(_MODEL_REGISTRY)}"
        )
    if isinstance(value, (list, tuple)):
        return tuple(_decode(v) for v in value)
    return value


def _key_encode(value: Any) -> Any:
    """Like :func:`_encode`, but nested workload specs collapse to
    their :meth:`~WorkloadSpec.content_key` — a composer's key then
    tracks member *content* (e.g. a member trace file's bytes), not
    just member field values."""
    if isinstance(value, WorkloadSpec):
        return {"workload": value.content_key()}
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_key_encode(v) for v in value]
    return value


class _SpecSerde:
    """to_dict/from_dict/to_json/from_json shared by both spec layers."""

    __slots__ = ()

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: ``{"kind": …, **fields}`` (JSON-compatible)."""
        data: dict[str, Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            data[f.name] = _encode(getattr(self, f.name))
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]):
        """Rebuild a spec from its :meth:`to_dict` form."""
        kind = data.get("kind", cls.kind)
        if kind != cls.kind:
            raise ConfigurationError(
                f"workload spec kind mismatch: expected {cls.kind!r}, got {kind!r}"
            )
        known = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        extra = set(data) - known - {"kind"}
        if extra:
            raise ConfigurationError(
                f"unknown field(s) {sorted(extra)} for workload kind {cls.kind!r}"
            )
        kwargs = {k: _decode(v) for k, v in data.items() if k != "kind"}
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"invalid {cls.kind!r} spec: {exc}") from None

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON text form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)


# -- branch model specs -------------------------------------------------------


def _register_model(cls: type["ModelSpec"]) -> type["ModelSpec"]:
    kind = cls.kind
    if not kind or kind in _MODEL_REGISTRY or kind in _REGISTRY:
        raise ConfigurationError(f"duplicate or empty model spec kind {kind!r}")
    _MODEL_REGISTRY[kind] = cls
    return cls


class ModelSpec(_SpecSerde):
    """Declarative form of one :class:`BranchModel` (a population's
    per-branch outcome process).  Model specs are pure data: their
    full field values participate in content keys directly."""

    __slots__ = ()

    def build(self):
        """Materialize the stateless :class:`BranchModel`."""
        raise NotImplementedError


def _coerce_probability(value: Any, what: str) -> float:
    """A probability as a canonical float (int 1 and float 1.0 must key
    identically), validated at the JSON boundary."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{what} must be a number, got {value!r}") from None
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{what} must be in [0, 1], got {value}")
    return value


def _coerce_int(value: Any, what: str) -> int:
    """An exact integer (8.5 is an error, 8.0 canonicalizes to 8)."""
    try:
        coerced = int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{what} must be an integer, got {value!r}") from None
    if coerced != value:
        raise ConfigurationError(f"{what} must be an integer, got {value!r}")
    return coerced


@_register_model
@dataclass(frozen=True, slots=True)
class BiasModelSpec(ModelSpec):
    """I.i.d. coin flips with taken probability ``p``."""

    kind: ClassVar[str] = "bias"

    p: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "p", _coerce_probability(self.p, "p"))

    def build(self):
        from .workloads.synthetic.models import BiasedModel

        return BiasedModel(self.p)


@_register_model
@dataclass(frozen=True, slots=True)
class PatternModelSpec(ModelSpec):
    """A fixed repeating 0/1 pattern (learnable by two-level predictors)."""

    kind: ClassVar[str] = "pattern"

    pattern: tuple[int, ...] = (1, 0)
    random_phase: bool = True

    def __post_init__(self) -> None:
        pattern = tuple(_coerce_int(v, "pattern entry") for v in self.pattern)
        if any(v not in (0, 1) for v in pattern):
            raise ConfigurationError("pattern entries must be 0 or 1")
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "random_phase", bool(self.random_phase))

    def build(self):
        from .workloads.synthetic.models import PatternModel

        return PatternModel(list(self.pattern), random_phase=self.random_phase)


@_register_model
@dataclass(frozen=True, slots=True)
class LoopModelSpec(ModelSpec):
    """A loop back-edge: taken ``body - 1`` times, then not-taken once."""

    kind: ClassVar[str] = "loop"

    body: int = 10
    random_phase: bool = True

    def __post_init__(self) -> None:
        body = _coerce_int(self.body, "body")
        if body < 2:
            raise ConfigurationError(f"loop body must be >= 2, got {body}")
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "random_phase", bool(self.random_phase))

    def build(self):
        from .workloads.synthetic.models import LoopModel

        return LoopModel(self.body, random_phase=bool(self.random_phase))


@_register_model
@dataclass(frozen=True, slots=True)
class AlternatingModelSpec(ModelSpec):
    """Strict T/N alternation — the transition-class-10 extreme."""

    kind: ClassVar[str] = "alternating"

    def build(self):
        from .workloads.synthetic.models import AlternatingModel

        return AlternatingModel()


@_register_model
@dataclass(frozen=True, slots=True)
class MarkovModelSpec(ModelSpec):
    """Two-state Markov chain; ``from_rates`` solves for target
    stationary taken/transition rates."""

    kind: ClassVar[str] = "markov"

    p_tn: float = 0.5
    p_nt: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "p_tn", _coerce_probability(self.p_tn, "p_tn"))
        object.__setattr__(self, "p_nt", _coerce_probability(self.p_nt, "p_nt"))
        if self.p_tn == 0.0 and self.p_nt == 0.0:
            raise ConfigurationError("absorbing chain: p_tn and p_nt cannot both be 0")

    @classmethod
    def from_rates(cls, taken_rate: float, transition_rate: float) -> "MarkovModelSpec":
        from .workloads.synthetic.models import MarkovModel

        model = MarkovModel.for_rates(taken_rate, transition_rate)
        return cls(p_tn=model.p_tn, p_nt=model.p_nt)

    def build(self):
        from .workloads.synthetic.models import MarkovModel

        return MarkovModel(self.p_tn, self.p_nt)


@_register_model
@dataclass(frozen=True, slots=True)
class PhasedModelSpec(ModelSpec):
    """Concatenated phases of other models (phase-changing branches)."""

    kind: ClassVar[str] = "phased"

    phases: tuple[tuple[ModelSpec, float], ...] = ()

    def __post_init__(self) -> None:
        normalized = []
        for entry in self.phases:
            model, weight = entry
            if not isinstance(model, ModelSpec):
                raise ConfigurationError("phases must pair a ModelSpec with a weight")
            normalized.append((model, float(weight)))
        if not normalized:
            raise ConfigurationError("phased model needs at least one phase")
        object.__setattr__(self, "phases", tuple(normalized))

    def build(self):
        from .workloads.synthetic.models import PhasedModel

        return PhasedModel([(m.build(), w) for m, w in self.phases])


def model_spec_kinds() -> tuple[str, ...]:
    """Every registered branch-model kind, in registration order."""
    return tuple(_MODEL_REGISTRY)


def model_spec_from_dict(data: Mapping[str, Any]) -> ModelSpec:
    """Rebuild any model spec from its :meth:`ModelSpec.to_dict` form."""
    if "kind" not in data:
        raise ConfigurationError("model spec dict needs a 'kind' key")
    kind = data["kind"]
    try:
        cls = _MODEL_REGISTRY[kind]
    except KeyError:
        raise SpecError(
            f"unknown model spec kind {kind!r}; available: {sorted(_MODEL_REGISTRY)}"
        ) from None
    return cls.from_dict(data)


# -- workload spec base -------------------------------------------------------


def _register(cls: type["WorkloadSpec"]) -> type["WorkloadSpec"]:
    kind = cls.kind
    if not kind or kind in _REGISTRY or kind in _MODEL_REGISTRY:
        raise ConfigurationError(f"duplicate or empty workload spec kind {kind!r}")
    _REGISTRY[kind] = cls
    return cls


class WorkloadSpec(_SpecSerde):
    """Base class for declarative trace sources.

    Subclasses are frozen dataclasses registered under a unique
    :attr:`kind` string.  Two specs are equal (and hash equal) iff
    they have the same kind and field values; two specs with the same
    :meth:`content_key` materialize bit-identical traces.
    """

    __slots__ = ()

    #: Registry key; also the ``"kind"`` entry of the serialized form.
    kind: ClassVar[str] = ""

    # -- identity -----------------------------------------------------------

    @property
    def label(self) -> str:
        """The materialized trace's name (stable, no generation needed)."""
        raise NotImplementedError

    def content_key(self) -> str:
        """Stable content address of the workload.

        sha256 over the canonical JSON of ``{version, kind, fields}``
        with nested workloads collapsed to *their* content keys.
        Subclasses whose trace depends on state outside their fields
        (e.g. file bytes) extend :meth:`_key_fields`.
        """
        payload = {
            "v": WORKLOAD_KEY_VERSION,
            "kind": self.kind,
            "fields": self._key_fields(),
        }
        return _sha256(_canonical(payload))

    def _key_fields(self) -> dict[str, Any]:
        return {
            f.name: _key_encode(getattr(self, f.name))
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }

    # -- materialization ----------------------------------------------------

    def materialize(self) -> Trace:
        """Generate/load/execute the trace (named :attr:`label`)."""
        raise NotImplementedError

    # -- out-of-core streaming ----------------------------------------------

    def streams(self) -> bool:
        """True if this workload is simulated out-of-core (cheap probe;
        only large binary :class:`TraceFileSpec` workloads stream)."""
        return False

    def stream_source(self):
        """A fresh :class:`~repro.trace.io.TraceReader` over this
        workload's chunks, or ``None`` when it must be materialized.

        Non-``None`` exactly when :meth:`streams` is true.  Callers own
        the reader (close it, or iterate it repeatedly); the chunks are
        bit-identical to :meth:`materialize` split at chunk boundaries,
        but are named by the *file's* stored name — pass
        :attr:`label` explicitly where the trace name matters.
        """
        return None

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        """Rebuild a workload spec from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid workload JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("workload JSON must be an object")
        if cls is WorkloadSpec:
            return workload_spec_from_dict(data)
        return cls.from_dict(data)


# -- spec95 synthetic benchmarks ----------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class Spec95InputSpec(WorkloadSpec):
    """One calibrated synthetic SPECint95 benchmark/input pair.

    ``benchmark``/``input_name`` must name a row of the paper's
    Table 1 (:data:`repro.workloads.synthetic.spec95.SPEC95_INPUTS`);
    ``scale`` multiplies the reduced-scale trace length exactly like
    the experiment pipeline's ``--scale``.
    """

    kind: ClassVar[str] = "spec95"

    benchmark: str = "gcc"
    input_name: str = "expr.i"
    scale: float = 1.0

    def __post_init__(self) -> None:
        self._input_set()  # validate the Table 1 row exists
        if not self.scale > 0:
            raise ConfigurationError("scale must be positive")
        object.__setattr__(self, "scale", float(self.scale))

    def _input_set(self):
        from .workloads.synthetic.spec95 import SPEC95_INPUTS

        for input_set in SPEC95_INPUTS:
            if (
                input_set.benchmark == self.benchmark
                and input_set.input_name == self.input_name
            ):
                return input_set
        known = sorted({s.benchmark for s in SPEC95_INPUTS})
        raise ConfigurationError(
            f"unknown Table 1 input {self.benchmark}/{self.input_name}; "
            f"benchmarks: {known}"
        )

    @classmethod
    def of(cls, label: str, *, scale: float = 1.0) -> "Spec95InputSpec":
        """Spec from a ``"benchmark/input"`` label (e.g. ``"gcc/expr.i"``)."""
        benchmark, _, input_name = label.partition("/")
        if not input_name:
            raise ConfigurationError(
                f"spec95 label must look like 'benchmark/input', got {label!r}"
            )
        return cls(benchmark=benchmark, input_name=input_name, scale=scale)

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.input_name}"

    def materialize(self) -> Trace:
        from .workloads.synthetic.spec95 import input_trace

        return input_trace(self._input_set(), scale=self.scale).with_name(self.label)


# -- raw model-mix populations ------------------------------------------------


@dataclass(frozen=True, slots=True)
class PopulationBranch:
    """One static branch of a :class:`PopulationSpec`: a PC, an outcome
    model, a schedule weight, and the optional hard/follower markers of
    :class:`~repro.workloads.synthetic.population.BranchSpec`."""

    pc: int
    model: ModelSpec
    weight: int = 1
    hard: bool = False
    follows: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.model, ModelSpec):
            raise ConfigurationError("branch model must be a ModelSpec")
        object.__setattr__(self, "pc", _coerce_int(self.pc, "pc"))
        object.__setattr__(self, "weight", _coerce_int(self.weight, "weight"))
        object.__setattr__(self, "hard", bool(self.hard))
        if self.follows is not None:
            object.__setattr__(self, "follows", _coerce_int(self.follows, "follows"))

    def to_dict(self) -> dict[str, Any]:
        return {
            "pc": self.pc,
            "model": self.model.to_dict(),
            "weight": self.weight,
            "hard": self.hard,
            "follows": self.follows,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PopulationBranch":
        try:
            return cls(
                pc=data["pc"],
                model=model_spec_from_dict(data["model"]),
                weight=data.get("weight", 1),
                hard=data.get("hard", False),
                follows=data.get("follows"),
            )
        except KeyError as exc:
            raise ConfigurationError(f"population branch needs field {exc}") from None


@_register
@dataclass(frozen=True, slots=True)
class PopulationSpec(WorkloadSpec):
    """A raw synthetic population: explicit branches over the model zoo.

    The declarative face of
    :class:`~repro.workloads.synthetic.population.BranchPopulation` —
    what :mod:`~repro.workloads.synthetic.spec95` builds internally,
    exposed so custom populations are first-class workloads.
    """

    kind: ClassVar[str] = "population"

    branches: tuple[PopulationBranch, ...] = ()
    length: int = 10_000
    seed: int = 0
    hard_adjacency: float = 0.0
    name: str = "population"

    def __post_init__(self) -> None:
        normalized = []
        for branch in self.branches:
            if isinstance(branch, Mapping):
                branch = PopulationBranch.from_dict(branch)
            if not isinstance(branch, PopulationBranch):
                raise ConfigurationError("branches must be PopulationBranch entries")
            normalized.append(branch)
        if not normalized:
            raise ConfigurationError("population needs at least one branch")
        length = _coerce_int(self.length, "length")
        if length < 0:
            raise ConfigurationError("length must be non-negative")
        object.__setattr__(self, "branches", tuple(normalized))
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "seed", _coerce_int(self.seed, "seed"))
        object.__setattr__(self, "hard_adjacency", float(self.hard_adjacency))

    @property
    def label(self) -> str:
        return self.name

    def materialize(self) -> Trace:
        from .workloads.synthetic.population import BranchPopulation, BranchSpec

        population = BranchPopulation(
            [
                BranchSpec(
                    pc=b.pc,
                    model=b.model.build(),
                    weight=b.weight,
                    hard=b.hard,
                    follows=b.follows,
                )
                for b in self.branches
            ],
            seed=self.seed,
            hard_adjacency=self.hard_adjacency,
            name=self.name,
        )
        return population.generate(self.length, name=self.label)


# -- VM kernel programs -------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class KernelSpec(WorkloadSpec):
    """A mini-ISA kernel executed to completion by the VM.

    The trace is *earned*: :func:`run_kernel` verifies the program's
    architectural output (sorts actually sort), so a kernel workload's
    branches come from a real algorithm, not a generator.
    """

    kind: ClassVar[str] = "kernel"

    name: str = "bubble_sort"
    size: int = 64
    seed: int = 0
    alias: str = ""

    def __post_init__(self) -> None:
        from .workloads.programs.kernels import KERNEL_NAMES

        if self.name not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {self.name!r}; available: {KERNEL_NAMES}"
            )
        size = _coerce_int(self.size, "size")
        if size < 1:
            raise ConfigurationError("size must be >= 1")
        object.__setattr__(self, "size", size)
        object.__setattr__(self, "seed", _coerce_int(self.seed, "seed"))

    @property
    def label(self) -> str:
        return self.alias or f"vm/{self.name}"

    def materialize(self) -> Trace:
        from .workloads.programs.kernels import run_kernel

        result = run_kernel(self.name, size=self.size, seed=self.seed)
        assert result.trace is not None
        return result.trace.with_name(self.label)


def _coerce_rates(value: Any, what: str) -> tuple[float, ...]:
    """A rate list field: scalars become one-element tuples, every
    entry must be a probability."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        value = (value,)
    if not isinstance(value, (tuple, list)) or not value:
        raise ConfigurationError(f"{what} must be a number or a non-empty list")
    return tuple(_coerce_probability(v, what) for v in value)


@_register
@dataclass(frozen=True, slots=True)
class GenKernelSpec(WorkloadSpec):
    """A parametrically *generated* mini-ISA kernel.

    Declarative front end for
    :func:`repro.workloads.generator.generate_kernel`: branch topology
    (``branches`` × ``unroll`` sites, ``depth``-deep loop nest,
    ``pattern``/``align`` physical layout) and per-branch
    taken/transition-rate targets, deterministic in ``seed``.  The VM
    executes the program and verifies its architectural output, so the
    trace is earned the same way :class:`KernelSpec` traces are — but
    every site's transition-rate class is known *by construction*,
    which is what the ``adversarial`` suite leans on.
    """

    kind: ClassVar[str] = "gen-kernel"

    branches: int = 4
    iters: int = 256
    unroll: int = 1
    depth: int = 1
    pattern: str = "seq"
    align: int = 0
    taken_rates: tuple[float, ...] = (0.5,)
    transition_rates: tuple[float, ...] = (0.5,)
    seed: int = 0
    alias: str = ""

    def __post_init__(self) -> None:
        for name in ("branches", "iters", "unroll", "depth", "align", "seed"):
            object.__setattr__(self, name, _coerce_int(getattr(self, name), name))
        object.__setattr__(self, "taken_rates", _coerce_rates(self.taken_rates, "taken_rates"))
        object.__setattr__(
            self, "transition_rates", _coerce_rates(self.transition_rates, "transition_rates")
        )
        # Validate topology eagerly (a bad spec should fail at
        # construction, not at materialize time); building the program
        # text for a handful of sites is cheap.
        self._kernel()

    def _kernel(self):
        from .workloads.generator import generate_kernel

        return generate_kernel(
            branches=self.branches,
            iters=self.iters,
            unroll=self.unroll,
            depth=self.depth,
            pattern=self.pattern,
            align=self.align,
            taken_rates=self.taken_rates,
            transition_rates=self.transition_rates,
            seed=self.seed,
        )

    @property
    def label(self) -> str:
        if self.alias:
            return self.alias
        return (
            f"gen/b{self.branches}x{self.unroll}d{self.depth}"
            f"-{self.pattern}-s{self.seed}"
        )

    def materialize(self) -> Trace:
        from .workloads.generator import run_generated

        result = run_generated(self._kernel(), name=self.label)
        assert result.trace is not None
        return result.trace.with_name(self.label)


# -- on-disk trace files ------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class TraceFileSpec(WorkloadSpec):
    """A saved trace file (binary ``.rbt`` or text format).

    The content key fingerprints the file's *bytes* — editing the file
    re-keys every downstream artifact.  ``sha256`` may pin the
    expected fingerprint (:meth:`of` does); materialization then fails
    loudly if the file changed underneath the spec.
    """

    kind: ClassVar[str] = "trace-file"

    path: str = ""
    sha256: str = ""
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("trace-file spec needs a path")
        object.__setattr__(self, "path", str(self.path))

    @classmethod
    def of(cls, path: str | Path, *, alias: str = "") -> "TraceFileSpec":
        """Spec for ``path`` with the current file content pinned."""
        return cls(path=str(path), sha256=file_fingerprint(path), alias=alias)

    @property
    def label(self) -> str:
        return self.alias or Path(self.path).stem

    def _key_fields(self) -> dict[str, Any]:
        # The file's *content* is the workload; the path it happens to
        # live at is not (an unpinned spec fingerprints at key time).
        # The label IS part of the content — the materialized trace is
        # named by it, and results/artifacts key on trace names — so
        # same bytes under a different stem/alias stay distinct.
        return {
            "sha256": self.sha256 or file_fingerprint(self.path),
            "label": self.label,
        }

    def materialize(self) -> Trace:
        from .trace.io import load_trace

        self._check_pin()
        return load_trace(self.path).with_name(self.label)

    def _check_pin(self) -> None:
        if self.sha256:
            actual = file_fingerprint(self.path)
            if actual != self.sha256:
                raise TraceError(
                    f"trace file {self.path} changed: fingerprint {actual[:12]} "
                    f"does not match pinned {self.sha256[:12]}"
                )

    def streams(self) -> bool:
        """True when the file is a binary trace at least
        :func:`stream_threshold` bytes large (text traces always
        materialize — they have no chunk structure to seek)."""
        from .trace.io import MAGIC

        try:
            if os.stat(self.path).st_size < stream_threshold():
                return False
            with open(self.path, "rb") as fp:
                return fp.read(4) == MAGIC
        except OSError:
            return False  # let materialize() raise the real error

    def stream_source(self):
        from .trace.io import TraceReader

        if not self.streams():
            return None
        self._check_pin()
        return TraceReader(self.path)


@_register
@dataclass(frozen=True, slots=True)
class PerfLbrSpec(WorkloadSpec):
    """A real-hardware branch trace: ``perf script`` LBR output.

    Materializing parses the text dump through
    :mod:`repro.ingest.perf` and yields the per-PC taken/not-taken
    stream.  The content key fingerprints the *source bytes* plus the
    filter parameters (event/pid/cond_only) — same capture filtered
    differently is a different workload.  ``sha256`` may pin the
    expected source fingerprint (:meth:`of` does).

    This spec parses in memory; for multi-GB captures convert once with
    ``repro ingest perf`` and point a :class:`TraceFileSpec` at the
    resulting ``.rbt``, which streams out-of-core.
    """

    kind: ClassVar[str] = "perf-lbr"

    path: str = ""
    sha256: str = ""
    event: str = ""
    pid: int | None = None
    cond_only: bool = False
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("perf-lbr spec needs a path")
        object.__setattr__(self, "path", str(self.path))
        if self.pid is not None:
            pid = _coerce_int(self.pid, "pid")
            if pid < 0:
                raise ConfigurationError(f"pid must be >= 0, got {pid}")
            object.__setattr__(self, "pid", pid)

    @classmethod
    def of(cls, path: str | Path, **kwargs: Any) -> "PerfLbrSpec":
        """Spec for ``path`` with the current file content pinned."""
        return cls(path=str(path), sha256=file_fingerprint(path), **kwargs)

    @property
    def label(self) -> str:
        return self.alias or Path(self.path).stem

    def _key_fields(self) -> dict[str, Any]:
        # Source bytes + filters are the workload; the path is not.
        return {
            "sha256": self.sha256 or file_fingerprint(self.path),
            "event": self.event,
            "pid": self.pid,
            "cond_only": self.cond_only,
            "label": self.label,
        }

    def materialize(self) -> Trace:
        from .ingest.perf import parse_perf_trace

        trace, report = parse_perf_trace(
            self.path,
            event=self.event or None,
            pid=self.pid,
            cond_only=self.cond_only,
            name=self.label,
        )
        if self.sha256 and report.sha256 != self.sha256:
            raise TraceError(
                f"perf trace {self.path} changed: fingerprint "
                f"{report.sha256[:12]} does not match pinned {self.sha256[:12]}"
            )
        if not len(trace):
            raise TraceError(
                f"no branch records parsed from {self.path!r} "
                f"({report.summary()}); is this really `perf script` output?"
            )
        return trace


# -- composers ----------------------------------------------------------------


@_register
@dataclass(frozen=True, slots=True)
class ConcatSpec(WorkloadSpec):
    """Member workloads concatenated end to end (shared PC space)."""

    kind: ClassVar[str] = "concat"

    parts: tuple[WorkloadSpec, ...] = ()
    name: str = "concat"

    def __post_init__(self) -> None:
        parts = tuple(self.parts)
        if not parts:
            raise ConfigurationError("concat needs at least one part")
        for part in parts:
            if not isinstance(part, WorkloadSpec):
                raise ConfigurationError("concat parts must be WorkloadSpecs")
        object.__setattr__(self, "parts", parts)

    @property
    def label(self) -> str:
        return self.name

    def materialize(self) -> Trace:
        return concat_traces(
            [part.materialize() for part in self.parts], name=self.label
        )


#: Filter operations available to :class:`FilterSpec`, mapping op name
#: to a callable of ``(trace, *args)``.
_FILTER_OPS: dict[str, Callable[..., Trace]] = {}


def _filter_op(name: str):
    def register(fn):
        _FILTER_OPS[name] = fn
        return fn

    return register


@_filter_op("select_pcs")
def _op_select_pcs(trace: Trace, pcs) -> Trace:
    from .trace.filters import select_pcs

    return select_pcs(trace, pcs)


@_filter_op("exclude_pcs")
def _op_exclude_pcs(trace: Trace, pcs) -> Trace:
    from .trace.filters import exclude_pcs

    return exclude_pcs(trace, pcs)


@_filter_op("window")
def _op_window(trace: Trace, start, length) -> Trace:
    from .trace.filters import window

    return window(trace, int(start), int(length))


@_filter_op("sample_every")
def _op_sample_every(trace: Trace, stride, phase=0) -> Trace:
    from .trace.filters import sample_every

    return sample_every(trace, int(stride), phase=int(phase))


@_filter_op("offset_pcs")
def _op_offset_pcs(trace: Trace, offset) -> Trace:
    from .trace.filters import offset_pcs

    return offset_pcs(trace, int(offset))


@_filter_op("head")
def _op_head(trace: Trace, n) -> Trace:
    return trace.head(int(n))


@_register
@dataclass(frozen=True, slots=True)
class FilterSpec(WorkloadSpec):
    """A :mod:`repro.trace.filters` transformation of another workload.

    ``op`` selects the transformation; ``args`` are its positional
    arguments after the trace (e.g. ``op="window", args=(0, 1000)``).
    """

    kind: ClassVar[str] = "filter"

    source: WorkloadSpec | None = None
    op: str = "head"
    args: tuple = ()
    alias: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.source, WorkloadSpec):
            raise ConfigurationError("filter source must be a WorkloadSpec")
        if self.op not in _FILTER_OPS:
            raise ConfigurationError(
                f"unknown filter op {self.op!r}; available: {sorted(_FILTER_OPS)}"
            )
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def label(self) -> str:
        assert self.source is not None
        return self.alias or f"{self.source.label}|{self.op}"

    def materialize(self) -> Trace:
        assert self.source is not None
        trace = _FILTER_OPS[self.op](self.source.materialize(), *self.args)
        return trace.with_name(self.label)


@_register
@dataclass(frozen=True, slots=True)
class SuiteSpec(WorkloadSpec):
    """A named, ordered collection of uniquely-labelled workloads.

    The unit the experiment pipeline plans over: per-member artifacts
    (profiles, sweep parts) are keyed by member labels, which are
    available without materializing anything.  :meth:`materialize`
    returns the suite merged into one disjoint-PC-space trace
    (:func:`~repro.trace.filters.merge_suite`); :meth:`traces` gives
    the per-member list the pipeline's workload artifact holds.
    """

    kind: ClassVar[str] = "suite"

    name: str = "suite"
    members: tuple[WorkloadSpec, ...] = ()

    def __post_init__(self) -> None:
        members = tuple(self.members)
        if not members:
            raise ConfigurationError("suite needs at least one member")
        labels = []
        for member in members:
            if not isinstance(member, WorkloadSpec):
                raise ConfigurationError("suite members must be WorkloadSpecs")
            labels.append(member.label)
        duplicates = sorted({label for label in labels if labels.count(label) > 1})
        if duplicates:
            raise ConfigurationError(
                f"suite member labels must be unique; duplicated: {duplicates}"
            )
        object.__setattr__(self, "members", members)

    @property
    def label(self) -> str:
        return self.name

    def labels(self) -> list[str]:
        """Member trace labels, in suite order (no generation)."""
        return [member.label for member in self.members]

    def traces(self) -> list[Trace]:
        """Materialize every member, in suite order."""
        return [m.materialize().with_name(m.label) for m in self.members]

    def materialize(self) -> Trace:
        from .trace.filters import merge_suite

        return merge_suite(self.traces(), name=self.label)


# -- registry API -------------------------------------------------------------


def workload_spec_kinds() -> tuple[str, ...]:
    """Every registered workload kind, in registration order."""
    return tuple(_REGISTRY)


def workload_spec_class(kind: str) -> type[WorkloadSpec]:
    """The workload spec class registered under ``kind``."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise SpecError(
            f"unknown workload kind {kind!r}; available: {sorted(_REGISTRY)}"
        ) from None


def workload_spec_from_dict(data: Mapping[str, Any]) -> WorkloadSpec:
    """Rebuild any workload spec from its :meth:`WorkloadSpec.to_dict` form."""
    if "kind" not in data:
        raise ConfigurationError("workload spec dict needs a 'kind' key")
    return workload_spec_class(data["kind"]).from_dict(data)


def workload_spec_from_json(text: str) -> WorkloadSpec:
    """Rebuild any workload spec from JSON text."""
    return WorkloadSpec.from_json(text)


# -- named suites -------------------------------------------------------------


def spec95_suite(inputs: str = "primary", scale: float = 1.0) -> SuiteSpec:
    """The calibrated synthetic SPECint95 suite (the historical default).

    ``inputs="primary"`` selects the largest input per benchmark (8
    members); ``"all"`` selects all 34 Table 1 rows — exactly the old
    ``--inputs`` semantics, now just a particular :class:`SuiteSpec`.
    """
    from .workloads.synthetic.spec95 import suite_input_sets

    members = tuple(
        Spec95InputSpec(benchmark=s.benchmark, input_name=s.input_name, scale=scale)
        for s in suite_input_sets(inputs)
    )
    name = "spec95" if inputs == "primary" else f"spec95-{inputs}"
    return SuiteSpec(name=name, members=members)


#: Base problem size per kernel at scale 1.0 — chosen so each kernel
#: contributes a few thousand dynamic branches (laptop-sized, like the
#: spec95 suite's reduced Table 1 scaling).
_KERNEL_BASE_SIZES = {
    "bubble_sort": 48,
    "binary_search": 96,
    "rle_compress": 384,
    "sieve": 512,
    "byte_scanner": 512,
    "matmul": 36,
}


def kernel_suite(scale: float = 1.0, *, seed: int = 0) -> SuiteSpec:
    """The VM kernel suite: every mini-ISA program, sizes scaled.

    A genuinely different workload universe from spec95: branches come
    from executed, output-verified algorithms rather than calibrated
    generators — ``repro run all --suite kernels`` reruns every
    figure/table on it.
    """
    if not scale > 0:
        raise ConfigurationError("scale must be positive")
    from .workloads.programs.kernels import KERNEL_NAMES

    members = tuple(
        KernelSpec(
            name=name,
            size=max(8, int(_KERNEL_BASE_SIZES[name] * scale)),
            seed=seed,
        )
        for name in KERNEL_NAMES
    )
    return SuiteSpec(name="kernels", members=members)


def adversarial_suite(scale: float = 1.0, *, seed: int = 0) -> SuiteSpec:
    """Generated kernels that sit on the classifier's weak spots.

    Members pair near-boundary transition-rate targets (the class
    edges at 5% and 95%, and the hard 50% middle) with topology
    stressors — an aliasing-heavy aligned layout, a physically
    scrambled ``jumpy`` body, and a deep loop nest.  Because
    :class:`GenKernelSpec` streams are exact by construction, each
    member's intended class is known, making boundary behaviour
    measurable instead of anecdotal.
    """
    if not scale > 0:
        raise ConfigurationError("scale must be positive")
    iters = max(64, int(512 * scale))

    def gen(alias: str, **kwargs: Any) -> GenKernelSpec:
        return GenKernelSpec(iters=iters, seed=seed, alias=alias, **kwargs)

    members = (
        # Transition rates a hair inside/outside the lowest class edge
        # (class 0 is [0, 5%), class 1 starts at 5%).
        gen("adv/edge-lo-in", branches=4, taken_rates=0.5, transition_rates=0.049),
        gen("adv/edge-lo-out", branches=4, taken_rates=0.5, transition_rates=0.051),
        # ... and the highest edge (class 10 starts at 95%).
        gen("adv/edge-hi-in", branches=4, taken_rates=0.5, transition_rates=0.951),
        gen("adv/edge-hi-out", branches=4, taken_rates=0.5, transition_rates=0.949),
        # The 50% middle: maximally unpredictable for 2-bit counters.
        gen("adv/mid", branches=4, taken_rates=0.5, transition_rates=0.5),
        # Aliasing stress: every branch PC congruent mod 2**10, so all
        # sites collide in predictor tables indexed by < 8 PC bits.
        gen(
            "adv/alias",
            branches=8,
            align=10,
            taken_rates=0.6,
            transition_rates=(0.3, 0.7),
        ),
        # Physically scrambled block layout + unrolled body.
        gen(
            "adv/jumpy",
            branches=6,
            unroll=2,
            pattern="jumpy",
            taken_rates=(0.3, 0.8),
            transition_rates=(0.15, 0.55, 0.85),
        ),
        # Deep loop nest: biased back-edges wrap the measured sites.
        gen(
            "adv/deep",
            branches=3,
            unroll=2,
            depth=3,
            taken_rates=0.7,
            transition_rates=0.35,
        ),
    )
    return SuiteSpec(name="adversarial", members=members)


#: Named suite constructors, each ``fn(scale) -> SuiteSpec``.
NAMED_SUITES: dict[str, Callable[[float], SuiteSpec]] = {
    "spec95": lambda scale: spec95_suite("primary", scale),
    "spec95-all": lambda scale: spec95_suite("all", scale),
    "kernels": kernel_suite,
    "adversarial": adversarial_suite,
}


def named_suite(name: str, *, scale: float = 1.0) -> SuiteSpec:
    """One of the built-in suites by name (``repro run --suite <name>``)."""
    try:
        builder = NAMED_SUITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite {name!r}; available: {sorted(NAMED_SUITES)} "
            "(or pass a suite JSON file)"
        ) from None
    return builder(scale)


def resolve_workload(text: str, *, scale: float = 1.0) -> WorkloadSpec:
    """Resolve a CLI workload value into a :class:`WorkloadSpec`.

    Accepts a built-in suite name (scaled by ``scale``), inline JSON
    (starting with ``{``), a path to a workload JSON file, or a trace
    file itself — ``file:<path>`` explicitly, or any path whose bytes
    carry the binary-trace magic — which resolves to a
    :class:`TraceFileSpec` (and therefore streams out-of-core above
    :func:`stream_threshold`).  The one resolver behind both
    ``--suite`` and ``--workload``.
    """
    candidate = text.strip()
    if candidate in NAMED_SUITES:
        return named_suite(candidate, scale=scale)
    if candidate.startswith("{"):
        return workload_spec_from_json(candidate)
    if candidate.startswith("file:"):
        return TraceFileSpec(path=candidate[len("file:") :])
    path = Path(candidate)
    if not path.exists():
        raise ConfigurationError(
            f"workload {candidate!r} is neither a built-in suite name "
            f"({sorted(NAMED_SUITES)}), inline JSON, nor an existing file"
        )
    try:
        from .trace.io import MAGIC

        with open(path, "rb") as fp:
            if fp.read(4) == MAGIC:
                return TraceFileSpec(path=str(path))
        return workload_spec_from_json(path.read_text())
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read workload file {candidate!r}: {exc}"
        ) from None


def load_suite(text: str, *, scale: float = 1.0) -> SuiteSpec:
    """Resolve a CLI ``--suite`` value into a :class:`SuiteSpec`.

    :func:`resolve_workload`, plus: a workload that is not itself a
    suite is wrapped into a one-member suite, so ``--suite`` composes
    with any workload document.
    """
    spec = resolve_workload(text, scale=scale)
    if isinstance(spec, SuiteSpec):
        return spec
    return SuiteSpec(name=spec.label, members=(spec,))
