"""Unified simulation session: submit jobs, plan, batch, execute.

Every consumer of the simulator used to hand-build stateful predictors
and call :func:`repro.engine.simulate` one job at a time, so only the
hard-coded paper sweep benefited from the batched multi-configuration
engine.  :class:`Session` is the declarative front door that fixes
that: callers submit ``(workload, spec)`` *jobs* (workloads are
:class:`~repro.trace.stream.Trace` objects or the frozen
:class:`~repro.workload_spec.WorkloadSpec` descriptions; specs are the
frozen :class:`~repro.spec.PredictorSpec` descriptions) and the session

1. **deduplicates by content** — identical jobs (same workload
   content, spec and engine request) are simulated once and every
   duplicate handle receives the shared result.  Workload specs are
   keyed by :meth:`~repro.workload_spec.WorkloadSpec.content_key` and
   materialized at most once per session; plain traces fall back to a
   content fingerprint (name + sha256 of the pcs/outcomes columns), so
   two separately materialized identical traces still share one engine
   invocation;
2. **plans** — jobs on the same trace whose specs belong to the
   two-level family are grouped into a *single*
   :func:`~repro.engine.simulate_batched` invocation (shared history
   windows, one PC encoding, stacked scans), while the remaining specs
   route to the vectorized engine when supported and the reference
   engine otherwise;
3. **memoizes** — results are cached for the lifetime of the session,
   so resubmitting a job after :meth:`Session.run` costs nothing.

The plan is inspectable before execution (:meth:`Session.plan`), and
results come back keyed by the job handles that :meth:`Session.submit`
returned.  See ``docs/API.md`` for the lifecycle walk-through.

The same dedupe-by-content principle extends up the stack: the
analysis service (:mod:`repro.service`, ``docs/SERVICE.md``) keys
whole *service jobs* by request content, so concurrent identical
requests share one computation exactly as duplicate session jobs
share one engine invocation here.

Every routing decision preserves bit-exactness: the batched, vectorized
and reference engines produce identical
:class:`~repro.engine.results.SimulationResult` objects for the
predictors they share, so the planner is free to pick the fastest.

Workload specs that report a stream source (binary trace files at or
above :func:`repro.workload_spec.stream_threshold` bytes) are simulated
*out-of-core*: their slot holds a :class:`StreamedTrace` instead of
materialized columns, and execution routes through the chunked
streaming engines (:mod:`repro.engine.streaming`) with peak memory
O(chunk) — still bit-identical.  See ``docs/TRACES.md``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from .engine import simulate, simulate_batched
from .engine.backend import BACKENDS
from .engine.batched import DEFAULT_MAX_CHUNK_ELEMENTS
from .engine.results import SimulationResult
from .engine.streaming import simulate_batched_stream, simulate_stream
from .errors import ConfigurationError
from .spec import (
    AgreeSpec,
    BimodalSpec,
    HybridSpec,
    PredictorSpec,
    ProfileStaticSpec,
    StaticSpec,
    TournamentSpec,
    TwoLevelSpec,
)
from .trace.stream import Trace
from .workload_spec import WorkloadSpec, trace_fingerprint

__all__ = [
    "SimulationJob",
    "PlanEntry",
    "PlannedBatch",
    "SessionPlan",
    "SessionResults",
    "Session",
    "StreamedTrace",
    "batchable_spec",
    "vectorizable_spec",
]

ENGINES = ("auto", "batched", "vectorized", "reference")

# These spec-level capability predicates mirror the engines'
# supports_batched/supports_vectorized so the planner can route without
# building predictors.  When engine support widens, extend them too —
# tests/test_session.py pins the two layers against each other over the
# full spec catalogue, so drift fails loudly instead of silently
# degrading jobs to the reference engine.

#: Spec families the batched multi-configuration engine accepts.
_BATCHABLE_SPECS = (TwoLevelSpec, BimodalSpec)


def batchable_spec(spec: PredictorSpec) -> bool:
    """True if ``spec`` can join a batched multi-configuration pass."""
    return isinstance(spec, _BATCHABLE_SPECS)


def vectorizable_spec(spec: PredictorSpec) -> bool:
    """True if ``spec`` builds a predictor the vectorized engine supports.

    Mirrors :func:`repro.engine.supports_vectorized` at the spec level,
    so the planner can route without building anything.
    """
    if isinstance(spec, (TwoLevelSpec, BimodalSpec, AgreeSpec, StaticSpec, ProfileStaticSpec)):
        return True
    if isinstance(spec, TournamentSpec):
        return vectorizable_spec(spec.first) and vectorizable_spec(spec.second)
    if isinstance(spec, HybridSpec):
        return all(vectorizable_spec(component) for component in spec.components)
    return False


class StreamedTrace:
    """A session workload simulated out-of-core.

    Stands in for the materialized :class:`~repro.trace.stream.Trace`
    in the session's workload slots when a
    :class:`~repro.workload_spec.WorkloadSpec` reports a stream source
    (a large binary trace file): only the spec and one open
    :class:`~repro.trace.io.TraceReader` are held — never the trace
    columns — and every engine pass re-iterates the reader's chunks.
    Quacks like a trace where the planner needs it (``name``, length).
    """

    __slots__ = ("spec", "reader", "name")

    def __init__(self, spec: WorkloadSpec, reader) -> None:
        self.spec = spec
        self.reader = reader
        self.name = spec.label

    def __len__(self) -> int:
        return len(self.reader)

    def chunks(self):
        """A fresh iterator over the workload's chunks."""
        return iter(self.reader)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamedTrace(name={self.name!r}, records={len(self)})"


@dataclass(frozen=True, eq=False, slots=True)
class SimulationJob:
    """Handle for one submitted ``(workload, spec)`` simulation request.

    Jobs compare and hash by *identity* (each :meth:`Session.submit`
    call returns a distinct handle, even for duplicate requests), so
    they are cheap dictionary keys; the planner deduplicates the
    underlying work separately, by workload-content and spec equality.
    ``trace`` is the session's canonical materialized trace for the
    job's workload slot.
    """

    index: int
    trace: Trace | StreamedTrace
    spec: PredictorSpec
    engine: str
    slot: int = 0


@dataclass(frozen=True, slots=True)
class PlanEntry:
    """One unit of unique work: a spec plus every job it satisfies."""

    spec: PredictorSpec
    jobs: tuple[SimulationJob, ...]
    cached: bool

    @property
    def duplicates(self) -> int:
        """Jobs beyond the first that share this entry's result."""
        return len(self.jobs) - 1


@dataclass(frozen=True, slots=True)
class PlannedBatch:
    """One engine invocation the session will make for one trace.

    ``engine == "batched"`` means all entries run in a *single*
    multi-configuration pass; other engines run one entry at a time.
    """

    engine: str
    trace: Trace | StreamedTrace
    entries: tuple[PlanEntry, ...]

    @property
    def streamed(self) -> bool:
        """True when this batch simulates out-of-core."""
        return isinstance(self.trace, StreamedTrace)


@dataclass(frozen=True, slots=True)
class SessionPlan:
    """The execution plan for a session's pending jobs."""

    batches: tuple[PlannedBatch, ...]

    @property
    def num_jobs(self) -> int:
        """Pending jobs covered by this plan (including duplicates)."""
        return sum(len(e.jobs) for b in self.batches for e in b.entries)

    @property
    def num_unique(self) -> int:
        """Distinct simulations the plan will reference (cached or not)."""
        return sum(len(b.entries) for b in self.batches)

    @property
    def num_to_run(self) -> int:
        """Simulations that actually execute (not satisfied by the memo)."""
        return sum(1 for b in self.batches for e in b.entries if not e.cached)

    def describe(self) -> str:
        """Human-readable plan summary (used by ``repro simulate``)."""
        lines = [
            f"plan: {self.num_jobs} job(s) -> {self.num_unique} unique, "
            f"{self.num_to_run} to run"
        ]
        for batch in self.batches:
            label = batch.trace.name or f"<trace len={len(batch.trace)}>"
            mode = " (streamed)" if batch.streamed else ""
            lines.append(
                f"  [{batch.engine}] {label}: {len(batch.entries)} config(s){mode}"
            )
        return "\n".join(lines)


class SessionResults(Mapping[SimulationJob, SimulationResult]):
    """Results of one :meth:`Session.run`, keyed by job handle.

    Also iterable in submission order via :meth:`items`, with an
    :meth:`of` positional accessor for convenience.
    """

    __slots__ = ("_jobs", "_results")

    def __init__(
        self, jobs: list[SimulationJob], results: dict[SimulationJob, SimulationResult]
    ) -> None:
        self._jobs = list(jobs)
        self._results = results

    def __getitem__(self, job: SimulationJob) -> SimulationResult:
        return self._results[job]

    def __iter__(self) -> Iterator[SimulationJob]:
        return iter(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def of(self, index: int) -> SimulationResult:
        """Result of the ``index``-th job in this run (submission order)."""
        return self._results[self._jobs[index]]


class Session:
    """Facade that plans and executes many simulation jobs.

    Parameters
    ----------
    engine:
        Default engine request for submitted jobs.  ``"auto"`` lets the
        planner choose (batched for two-level-family specs, vectorized
        when supported, reference otherwise); ``"batched"``,
        ``"vectorized"`` and ``"reference"`` force that engine.
    max_chunk_elements:
        Memory bound forwarded to the batched engine.
    backend:
        Compiled-kernel backend for reference-path families
        (``auto``/``python``/``numba``/``cext``; see
        :mod:`repro.engine.backend`).  ``None`` defers to
        ``REPRO_ENGINE_BACKEND``.  Backends are bit-identical, so the
        session memo is unaffected by this choice.
    workers:
        Worker count for intra-trace parallel sweeps over streamed
        workloads (``"auto"`` = cpu count; see
        :mod:`repro.engine.parallel`).  ``None`` defers to
        ``REPRO_SWEEP_WORKERS`` (default serial).

    Lifecycle: :meth:`submit` any number of jobs, optionally inspect
    :meth:`plan`, then :meth:`run` — which returns a
    :class:`SessionResults` for the pending jobs and retains every
    result in the session memo for later resubmissions.
    """

    def __init__(
        self,
        *,
        engine: str = "auto",
        max_chunk_elements: int = DEFAULT_MAX_CHUNK_ELEMENTS,
        backend: str | None = None,
        workers: int | str | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ConfigurationError(f"engine {engine!r} not in {ENGINES}")
        if max_chunk_elements < 1:
            raise ConfigurationError("max_chunk_elements must be positive")
        if backend is not None and backend not in BACKENDS:
            raise ConfigurationError(f"backend {backend!r} not in {BACKENDS}")
        self.engine = engine
        self.max_chunk_elements = max_chunk_elements
        self.backend = backend
        self.workers = workers
        self._pending: list[SimulationJob] = []
        self._submitted = 0
        # Workloads are grouped by *content*: workload specs key on
        # their content_key (materialized once per session), plain
        # traces on a content fingerprint.  Each distinct Trace object
        # is hashed once (the cache below holds a strong reference, so
        # an id() can never be reused while its entry is alive); slot
        # order is first-seen.
        self._trace_slots: dict[str, int] = {}
        self._traces: list[Trace] = []
        self._fingerprints: dict[int, tuple[Trace, str]] = {}
        self._memo: dict[tuple[int, PredictorSpec, str], SimulationResult] = {}

    # -- job intake ---------------------------------------------------------

    def _workload_slot(self, workload: Trace | WorkloadSpec) -> int:
        """The content-keyed slot for a workload, materializing specs
        (and fingerprinting traces) at most once per distinct content.

        A spec slot also registers its materialized trace's
        fingerprint, so a workload spec and an equal already-built
        trace resolve to the same slot regardless of submission order.
        """
        if isinstance(workload, WorkloadSpec):
            key = f"workload:{workload.content_key()}"
            slot = self._trace_slots.get(key)
            if slot is None:
                source = workload.stream_source()
                if source is not None:
                    # Out-of-core workload: hold the spec and an open
                    # reader, never the trace columns.
                    slot = len(self._traces)
                    self._traces.append(StreamedTrace(workload, source))
                    self._trace_slots[key] = slot
                else:
                    trace = workload.materialize()
                    slot = self._register_trace(trace)
                    self._trace_slots[key] = slot
            return slot
        if isinstance(workload, Trace):
            return self._register_trace(workload)
        raise ConfigurationError(
            f"expected a Trace or WorkloadSpec, got {type(workload).__name__}"
        )

    def _register_trace(self, trace: Trace) -> int:
        cached = self._fingerprints.get(id(trace))
        if cached is None or cached[0] is not trace:
            self._fingerprints[id(trace)] = (trace, trace_fingerprint(trace))
        key = f"trace:{self._fingerprints[id(trace)][1]}"
        slot = self._trace_slots.get(key)
        if slot is None:
            slot = len(self._traces)
            self._trace_slots[key] = slot
            self._traces.append(trace)
        return slot

    def submit(
        self,
        workload: Trace | WorkloadSpec,
        spec: PredictorSpec,
        *,
        engine: str | None = None,
    ) -> SimulationJob:
        """Queue one simulation request; returns its job handle."""
        if not isinstance(spec, PredictorSpec):
            raise ConfigurationError(
                f"expected a PredictorSpec, got {type(spec).__name__} "
                "(build stateful predictors with repro.engine.simulate instead)"
            )
        requested = self.engine if engine is None else engine
        if requested not in ENGINES:
            raise ConfigurationError(f"engine {requested!r} not in {ENGINES}")
        slot = self._workload_slot(workload)
        job = SimulationJob(self._submitted, self._traces[slot], spec, requested, slot)
        self._submitted += 1
        self._pending.append(job)
        return job

    def submit_many(
        self,
        jobs: Iterable[tuple[Trace | WorkloadSpec, PredictorSpec]],
        *,
        engine: str | None = None,
    ) -> list[SimulationJob]:
        """Queue many ``(workload, spec)`` pairs; returns their handles in order."""
        return [self.submit(workload, spec, engine=engine) for workload, spec in jobs]

    # -- planning -----------------------------------------------------------

    def _resolve_engine(self, job: SimulationJob) -> str:
        if job.engine == "auto":
            if batchable_spec(job.spec):
                return "batched"
            return "vectorized" if vectorizable_spec(job.spec) else "reference"
        if job.engine == "batched" and not batchable_spec(job.spec):
            raise ConfigurationError(
                f"spec kind {job.spec.kind!r} cannot use the batched engine "
                "(two-level family only)"
            )
        return job.engine

    def _work_key(self, job: SimulationJob, engine: str) -> tuple[int, PredictorSpec, str]:
        return (job.slot, job.spec, engine)

    def plan(self) -> SessionPlan:
        """Group the pending jobs into engine invocations.

        Jobs are grouped per trace (first-submission order); within a
        trace, unique (spec, engine) work items are deduplicated, all
        batched-engine items form one :class:`PlannedBatch`, and the
        rest get per-engine batches executed one spec at a time.
        """
        # (trace slot, engine) -> {work key -> [jobs]}, insertion ordered.
        grouped: dict[
            tuple[int, str], dict[tuple[int, PredictorSpec, str], list[SimulationJob]]
        ] = {}
        for job in self._pending:
            engine = self._resolve_engine(job)
            key = self._work_key(job, engine)
            slot = key[0]
            grouped.setdefault((slot, engine), {}).setdefault(key, []).append(job)

        batches = []
        for (slot, engine), entries in grouped.items():
            batches.append(
                PlannedBatch(
                    engine=engine,
                    trace=self._traces[slot],
                    entries=tuple(
                        PlanEntry(
                            spec=key[1],
                            jobs=tuple(jobs),
                            cached=key in self._memo,
                        )
                        for key, jobs in entries.items()
                    ),
                )
            )
        return SessionPlan(batches=tuple(batches))

    # -- execution ----------------------------------------------------------

    def run(self) -> SessionResults:
        """Execute the pending jobs and return their results.

        Duplicate jobs share one simulation; work already in the
        session memo is not recomputed.  After the call the pending
        queue is empty, but the memo persists, so resubmitting any
        job is free.
        """
        plan = self.plan()
        for batch in plan.batches:
            slot = batch.entries[0].jobs[0].slot
            fresh = [e for e in batch.entries if (slot, e.spec, batch.engine) not in self._memo]
            if not fresh:
                continue
            if isinstance(batch.trace, StreamedTrace):
                streamed = batch.trace
                if batch.engine == "batched":
                    # One multi-configuration pass over the chunk
                    # iterator covers every entry, O(chunk) memory.
                    results = simulate_batched_stream(
                        [entry.spec.build() for entry in fresh],
                        streamed.chunks(),
                        max_chunk_elements=self.max_chunk_elements,
                        trace_name=streamed.name,
                        workers=self.workers,
                    )
                    for entry, result in zip(fresh, results):
                        self._memo[(slot, entry.spec, batch.engine)] = result
                else:
                    for entry in fresh:
                        self._memo[(slot, entry.spec, batch.engine)] = simulate_stream(
                            entry.spec.build(),
                            streamed.chunks(),
                            engine=batch.engine,
                            trace_name=streamed.name,
                            backend=self.backend,
                        )
            elif batch.engine == "batched":
                # One multi-configuration pass covers every entry.
                results = simulate_batched(
                    [entry.spec.build() for entry in fresh],
                    batch.trace,
                    max_chunk_elements=self.max_chunk_elements,
                )
                for entry, result in zip(fresh, results):
                    self._memo[(slot, entry.spec, batch.engine)] = result
            else:
                for entry in fresh:
                    self._memo[(slot, entry.spec, batch.engine)] = simulate(
                        entry.spec.build(),
                        batch.trace,
                        engine=batch.engine,
                        backend=self.backend,
                    )

        jobs = self._pending
        self._pending = []
        results = {
            job: self._memo[self._work_key(job, self._resolve_engine(job))]
            for job in jobs
        }
        return SessionResults(jobs, results)

    def simulate(
        self,
        workload: Trace | WorkloadSpec,
        spec: PredictorSpec,
        *,
        engine: str | None = None,
    ) -> SimulationResult:
        """One-shot convenience: submit one job, run, return its result.

        Pending jobs submitted earlier run in the same pass (they stay
        planned together), so interleaving ``submit`` and ``simulate``
        does not lose batching.
        """
        job = self.submit(workload, spec, engine=engine)
        return self.run()[job]
